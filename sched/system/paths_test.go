package system

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoutingTableRing(t *testing.T) {
	nw, _ := Ring(6)
	rt := NewRoutingTable(nw)
	if got := rt.Hops(0, 3); got != 3 {
		t.Errorf("Hops(0,3)=%d, want 3", got)
	}
	if got := rt.Hops(0, 5); got != 1 {
		t.Errorf("Hops(0,5)=%d, want 1", got)
	}
	if got := rt.Hops(2, 2); got != 0 {
		t.Errorf("Hops(2,2)=%d, want 0", got)
	}
	if got := rt.Diameter(); got != 3 {
		t.Errorf("Diameter=%d, want 3", got)
	}
	route := rt.Route(0, 2, nil)
	if len(route) != 2 {
		t.Fatalf("Route(0,2)=%v", route)
	}
	if !ValidRoute(nw, 0, 2, route) {
		t.Error("route is not contiguous")
	}
	if len(rt.Route(4, 4, nil)) != 0 {
		t.Error("self-route should be empty")
	}
}

func TestRoutingTableHypercube(t *testing.T) {
	nw, _ := Hypercube(4)
	rt := NewRoutingTable(nw)
	if got := rt.Diameter(); got != 4 {
		t.Errorf("hypercube diameter=%d, want 4", got)
	}
	// Distance equals popcount of XOR.
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			x, pc := s^d, 0
			for x != 0 {
				pc += x & 1
				x >>= 1
			}
			if got := rt.Hops(ProcID(s), ProcID(d)); got != pc {
				t.Fatalf("Hops(%d,%d)=%d, want %d", s, d, got, pc)
			}
		}
	}
}

func TestRoutingTableProperty(t *testing.T) {
	// On random connected networks: every route is valid, has length equal
	// to the hop count, and distances are symmetric.
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + int(mRaw)%20
		nw, err := RandomConnected(m, 1, m, rng)
		if err != nil {
			return true
		}
		rt := NewRoutingTable(nw)
		for s := 0; s < m; s++ {
			for d := 0; d < m; d++ {
				route := rt.Route(ProcID(s), ProcID(d), nil)
				if !ValidRoute(nw, ProcID(s), ProcID(d), route) {
					return false
				}
				if len(route) != rt.Hops(ProcID(s), ProcID(d)) {
					return false
				}
				if rt.Hops(ProcID(s), ProcID(d)) != rt.Hops(ProcID(d), ProcID(s)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteProcs(t *testing.T) {
	nw, _ := Line(4) // links: 0:(0,1) 1:(1,2) 2:(2,3)
	procs := RouteProcs(nw, 0, []LinkID{0, 1, 2})
	want := []ProcID{0, 1, 2, 3}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("RouteProcs=%v, want %v", procs, want)
		}
	}
}

func TestValidRoute(t *testing.T) {
	nw, _ := Line(4)
	if !ValidRoute(nw, 2, 2, nil) {
		t.Error("empty route with src==dst is valid")
	}
	if ValidRoute(nw, 0, 2, nil) {
		t.Error("empty route with src!=dst is invalid")
	}
	if ValidRoute(nw, 0, 3, []LinkID{0, 2}) {
		t.Error("non-contiguous route accepted")
	}
	if ValidRoute(nw, 0, 1, []LinkID{99}) {
		t.Error("out-of-range link accepted")
	}
}

func TestNormalizeRoute(t *testing.T) {
	nw, _ := Ring(4) // links: 0:(0,1) 1:(1,2) 2:(2,3) 3:(0,3)
	// Route 0->1->2->1 has a loop back to 1; normalized should be 0->1.
	route := []LinkID{0, 1, 1}
	got := NormalizeRoute(nw, 0, route)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("NormalizeRoute=%v, want [0]", got)
	}
	// Route 0->1->0->3 (out and back then around): normalized 0->3 direct.
	route = []LinkID{0, 0, 3}
	got = NormalizeRoute(nw, 0, route)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("NormalizeRoute=%v, want [3]", got)
	}
	// Already-simple route unchanged.
	route = []LinkID{0, 1}
	got = NormalizeRoute(nw, 0, route)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("NormalizeRoute=%v, want [0 1]", got)
	}
	// Route that returns to the source entirely collapses to nothing.
	route = []LinkID{0, 0}
	if got = NormalizeRoute(nw, 0, route); len(got) != 0 {
		t.Fatalf("NormalizeRoute=%v, want []", got)
	}
	if got = NormalizeRoute(nw, 0, nil); len(got) != 0 {
		t.Fatal("nil route should stay empty")
	}
}

func TestNormalizeRouteProperty(t *testing.T) {
	// Random walks normalized become simple valid routes with the same
	// endpoints.
	f := func(seed int64, mRaw, stepsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + int(mRaw)%12
		nw, err := RandomConnected(m, 1, m, rng)
		if err != nil {
			return true
		}
		src := ProcID(rng.Intn(m))
		steps := int(stepsRaw) % 20
		var walk []LinkID
		p := src
		for i := 0; i < steps; i++ {
			nb := nw.Neighbors(p)
			if len(nb) == 0 {
				break
			}
			a := nb[rng.Intn(len(nb))]
			walk = append(walk, a.Link)
			p = a.Proc
		}
		norm := NormalizeRoute(nw, src, walk)
		if !ValidRoute(nw, src, p, norm) {
			return false
		}
		// Simple: no processor repeats.
		procs := RouteProcs(nw, src, norm)
		seen := map[ProcID]bool{}
		for _, q := range procs {
			if seen[q] {
				return false
			}
			seen[q] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkJSONRoundTrip(t *testing.T) {
	nw, _ := Hypercube(3)
	data, err := nw.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if nw2.NumProcs() != nw.NumProcs() || nw2.NumLinks() != nw.NumLinks() {
		t.Fatal("round trip mismatch")
	}
}
