package system

// Shortest-path routing support. BSA itself needs no routing table — routes
// emerge from task migration — but the DLS baseline (and the HEFT/CPOP
// extensions) route messages along precomputed shortest paths, as the paper
// notes traditional schedulers must.

// RoutingTable holds all-pairs shortest-path routing for a network. Routes
// are deterministic: BFS explores neighbours in increasing processor ID
// order, so among equal-hop routes the lexicographically smallest
// predecessor chain wins.
type RoutingTable struct {
	nw *Network
	// next[src][dst] is the first link on the route src->dst, -1 when
	// src==dst.
	next [][]LinkID
	dist [][]int32
}

// NewRoutingTable precomputes shortest-path routes with one BFS per
// processor: O(m * (m + links)).
func NewRoutingTable(nw *Network) *RoutingTable {
	m := nw.NumProcs()
	rt := &RoutingTable{
		nw:   nw,
		next: make([][]LinkID, m),
		dist: make([][]int32, m),
	}
	// BFS from every destination, recording each node's parent link toward
	// the destination; next[src][dst] then falls out directly.
	for dst := 0; dst < m; dst++ {
		rt.next[dst] = make([]LinkID, m) // filled transposed below
	}
	parent := make([]LinkID, m)
	distBuf := make([]int32, m)
	for dst := 0; dst < m; dst++ {
		for i := range parent {
			parent[i] = -1
			distBuf[i] = -1
		}
		distBuf[dst] = 0
		queue := []ProcID{ProcID(dst)}
		for len(queue) > 0 {
			p := queue[0]
			queue = queue[1:]
			for _, a := range nw.Neighbors(p) {
				if distBuf[a.Proc] < 0 {
					distBuf[a.Proc] = distBuf[p] + 1
					parent[a.Proc] = a.Link
					queue = append(queue, a.Proc)
				}
			}
		}
		for src := 0; src < m; src++ {
			rt.next[src][dst] = parent[src]
		}
		rt.dist[dst] = append([]int32(nil), distBuf...)
	}
	// dist is symmetric for undirected graphs; store as dist[src][dst].
	return rt
}

// Hops returns the shortest-path hop count from src to dst (0 when equal).
func (rt *RoutingTable) Hops(src, dst ProcID) int {
	return int(rt.dist[dst][src])
}

// Route appends the link sequence of the shortest path src->dst to dst0 and
// returns it. The result is empty when src == dst.
func (rt *RoutingTable) Route(src, dst ProcID, dst0 []LinkID) []LinkID {
	for src != dst {
		l := rt.next[src][dst]
		dst0 = append(dst0, l)
		src = rt.nw.Link(l).Other(src)
	}
	return dst0
}

// Diameter returns the largest shortest-path distance in the network.
func (rt *RoutingTable) Diameter() int {
	var d int32
	for _, row := range rt.dist {
		for _, v := range row {
			if v > d {
				d = v
			}
		}
	}
	return int(d)
}

// RouteProcs converts a link route starting at src into the visited
// processor sequence [src, ..., dst].
func RouteProcs(nw *Network, src ProcID, route []LinkID) []ProcID {
	procs := make([]ProcID, 0, len(route)+1)
	procs = append(procs, src)
	p := src
	for _, l := range route {
		p = nw.Link(l).Other(p)
		procs = append(procs, p)
	}
	return procs
}

// ValidRoute reports whether route is a contiguous link path from src to
// dst (an empty route requires src == dst).
func ValidRoute(nw *Network, src, dst ProcID, route []LinkID) bool {
	p := src
	for _, l := range route {
		if l < 0 || int(l) >= nw.NumLinks() {
			return false
		}
		lk := nw.Link(l)
		if !lk.Has(p) {
			return false
		}
		p = lk.Other(p)
	}
	return p == dst
}

// NormalizeRoute removes cycles from a route: whenever the walk revisits a
// processor, the intervening loop is spliced out. The result visits each
// processor at most once and still connects src to the same destination.
// BSA applies this after extending routes across migrations, giving the
// paper's "optimized routes" property.
func NormalizeRoute(nw *Network, src ProcID, route []LinkID) []LinkID {
	if len(route) == 0 {
		return route
	}
	procs := RouteProcs(nw, src, route)
	// lastAt[p] = last index in procs where p occurs.
	lastAt := make(map[ProcID]int, len(procs))
	for i, p := range procs {
		lastAt[p] = i
	}
	out := make([]LinkID, 0, len(route))
	for i := 0; i < len(procs)-1; {
		// Jump straight to the last occurrence of the current processor,
		// skipping any loop that returns here.
		j := lastAt[procs[i]]
		if j >= len(procs)-1 {
			break
		}
		out = append(out, route[j])
		i = j + 1
	}
	return out
}
