package system

import (
	"bytes"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

var (
	netHeaderRe = regexp.MustCompile(`^graph (".*") \{$`)
	netNodeRe   = regexp.MustCompile(`^\s*p(\d+) \[label=(".*")\];$`)
	netLinkRe   = regexp.MustCompile(`^\s*p(\d+) -- p(\d+);$`)
)

// FromDOT decodes a network previously written by Network.WriteDOT,
// returning the network and the graph title. It parses the restricted DOT
// subset WriteDOT emits (one statement per line), not arbitrary Graphviz
// input, and validates the result like Builder.Build.
func FromDOT(data []byte) (*Network, string, error) {
	b := NewBuilder()
	title := ""
	sawHeader := false
	line := 0
	for len(data) > 0 {
		raw := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		line++
		text := strings.TrimRight(string(raw), " \t\r")
		switch {
		case text == "" || text == "}":
			continue
		case strings.HasPrefix(text, "graph "):
			m := netHeaderRe.FindStringSubmatch(text)
			if m == nil {
				return nil, "", fmt.Errorf("system: dot line %d: malformed graph header", line)
			}
			t, err := strconv.Unquote(m[1])
			if err != nil {
				return nil, "", fmt.Errorf("system: dot line %d: bad title: %v", line, err)
			}
			title = t
			sawHeader = true
		case !sawHeader:
			return nil, "", fmt.Errorf("system: dot line %d: statement before graph header", line)
		default:
			if m := netLinkRe.FindStringSubmatch(text); m != nil {
				p, _ := strconv.Atoi(m[1])
				q, _ := strconv.Atoi(m[2])
				b.Connect(ProcID(p), ProcID(q))
				continue
			}
			if m := netNodeRe.FindStringSubmatch(text); m != nil {
				id, _ := strconv.Atoi(m[1])
				name, err := strconv.Unquote(m[2])
				if err != nil {
					return nil, "", fmt.Errorf("system: dot line %d: bad processor label: %v", line, err)
				}
				if got := b.AddProc(name); int(got) != id {
					return nil, "", fmt.Errorf("system: dot line %d: processor id p%d out of order (want p%d)", line, id, got)
				}
				continue
			}
			if strings.HasPrefix(strings.TrimSpace(text), "p") {
				return nil, "", fmt.Errorf("system: dot line %d: malformed statement %q", line, text)
			}
			// Attribute lines (node defaults, ...) are ignored.
		}
	}
	if !sawHeader {
		return nil, "", fmt.Errorf("system: dot input has no graph header")
	}
	nw, err := b.Build()
	if err != nil {
		return nil, "", err
	}
	return nw, title, nil
}

// ReadDOT decodes a network written by Network.WriteDOT from r.
func ReadDOT(r io.Reader) (*Network, string, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, "", err
	}
	return FromDOT(data)
}
