package system

import (
	"errors"
	"math"
	"testing"
)

// TestValidateRejectsNonFiniteFactors: NaN/Inf factor entries must fail
// Validate with *FactorError, exactly like non-positive entries. The
// JSON system loader funnels through Validate, so this also hardens
// SystemFromJSON against hand-edited inputs.
func TestValidateRejectsNonFiniteFactors(t *testing.T) {
	nw, err := Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1} {
		s := NewUniform(nw, 3, 2)
		s.Exec[1][2] = bad
		var fe *FactorError
		if err := s.Validate(3, 2); !errors.As(err, &fe) {
			t.Errorf("Exec entry %v: want *FactorError, got %v", bad, err)
		} else if fe.Matrix != "Exec" || fe.Row != 1 || fe.Col != 2 {
			t.Errorf("Exec entry %v: wrong coordinates in %v", bad, fe)
		}

		s = NewUniform(nw, 3, 2)
		s.Comm = [][]float64{{1, 1, 1, 1}, {1, 1, bad, 1}}
		if err := s.Validate(3, 2); !errors.As(err, &fe) {
			t.Errorf("Comm entry %v: want *FactorError, got %v", bad, err)
		} else if fe.Matrix != "Comm" || fe.Row != 1 || fe.Col != 2 {
			t.Errorf("Comm entry %v: wrong coordinates in %v", bad, fe)
		}
	}
}
