// This file models the system's interconnect: processors joined by
// undirected communication links, breadth-first processor orders and the
// incremental Builder behind the topology constructors.

package system

import (
	"fmt"
	"sort"
)

// ProcID identifies a processor; IDs are dense indices 0..NumProcs-1.
type ProcID int32

// LinkID identifies a link; IDs are dense indices 0..NumLinks-1.
type LinkID int32

// Processor is a node of the network.
type Processor struct {
	ID   ProcID
	Name string
}

// Link is an undirected communication link between processors A and B
// (A < B by construction).
type Link struct {
	ID LinkID
	A  ProcID
	B  ProcID
}

// Other returns the endpoint of l that is not p.
func (l Link) Other(p ProcID) ProcID {
	if p == l.A {
		return l.B
	}
	return l.A
}

// Has reports whether p is an endpoint of l.
func (l Link) Has(p ProcID) bool { return p == l.A || p == l.B }

// Adj is one adjacency entry: the neighbouring processor and the link
// reaching it.
type Adj struct {
	Proc ProcID
	Link LinkID
}

// Network is an immutable processor interconnect. Construct one with a
// Builder or one of the topology constructors.
type Network struct {
	procs []Processor
	links []Link
	adj   [][]Adj // per processor, sorted by neighbour ID
}

// NumProcs returns the number of processors m.
func (nw *Network) NumProcs() int { return len(nw.procs) }

// NumLinks returns the number of links.
func (nw *Network) NumLinks() int { return len(nw.links) }

// Proc returns the processor with the given ID.
func (nw *Network) Proc(id ProcID) Processor { return nw.procs[id] }

// Link returns the link with the given ID.
func (nw *Network) Link(id LinkID) Link { return nw.links[id] }

// Procs returns all processors in ID order. The slice must not be modified.
func (nw *Network) Procs() []Processor { return nw.procs }

// Links returns all links in ID order. The slice must not be modified.
func (nw *Network) Links() []Link { return nw.links }

// Neighbors returns the adjacency list of p, sorted by neighbour ID. The
// slice must not be modified.
func (nw *Network) Neighbors(p ProcID) []Adj { return nw.adj[p] }

// Degree returns the number of links incident to p.
func (nw *Network) Degree(p ProcID) int { return len(nw.adj[p]) }

// LinkBetween returns the link joining p and q, if any.
func (nw *Network) LinkBetween(p, q ProcID) (LinkID, bool) {
	for _, a := range nw.adj[p] {
		if a.Proc == q {
			return a.Link, true
		}
	}
	return -1, false
}

// IsConnected reports whether every processor is reachable from every
// other.
func (nw *Network) IsConnected() bool {
	m := len(nw.procs)
	if m <= 1 {
		return true
	}
	return len(nw.BFSOrder(0)) == m
}

// BFSOrder returns the processors in breadth-first order from start, with
// neighbours visited in increasing ID order. BSA uses this as its pivot
// order. Unreachable processors are omitted.
func (nw *Network) BFSOrder(start ProcID) []ProcID {
	m := len(nw.procs)
	seen := make([]bool, m)
	order := make([]ProcID, 0, m)
	queue := []ProcID{start}
	seen[start] = true
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		order = append(order, p)
		for _, a := range nw.adj[p] {
			if !seen[a.Proc] {
				seen[a.Proc] = true
				queue = append(queue, a.Proc)
			}
		}
	}
	return order
}

// String returns a short human-readable summary.
func (nw *Network) String() string {
	return fmt.Sprintf("network{m=%d links=%d}", len(nw.procs), len(nw.links))
}

// Builder assembles a Network incrementally. The zero value is not usable;
// call NewBuilder.
type Builder struct {
	nw    Network
	seen  map[[2]ProcID]bool
	names map[string]bool
	err   error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{seen: make(map[[2]ProcID]bool), names: make(map[string]bool)}
}

// AddProc adds a processor and returns its ID. Names must be unique and
// non-empty.
func (b *Builder) AddProc(name string) ProcID {
	id := ProcID(len(b.nw.procs))
	if b.err != nil {
		return id
	}
	if name == "" {
		b.fail(fmt.Errorf("system: empty processor name"))
		return id
	}
	if b.names[name] {
		b.fail(fmt.Errorf("system: duplicate processor name %q", name))
		return id
	}
	b.names[name] = true
	b.nw.procs = append(b.nw.procs, Processor{ID: id, Name: name})
	return id
}

// Connect adds an undirected link between p and q and returns its ID.
// Self-links and duplicate links are errors.
func (b *Builder) Connect(p, q ProcID) LinkID {
	id := LinkID(len(b.nw.links))
	if b.err != nil {
		return id
	}
	m := ProcID(len(b.nw.procs))
	switch {
	case p < 0 || p >= m || q < 0 || q >= m:
		b.fail(fmt.Errorf("system: link endpoint out of range: %d-%d (m=%d)", p, q, m))
		return id
	case p == q:
		b.fail(fmt.Errorf("system: self-link on processor %d", p))
		return id
	}
	if p > q {
		p, q = q, p
	}
	key := [2]ProcID{p, q}
	if b.seen[key] {
		b.fail(fmt.Errorf("system: duplicate link %d-%d", p, q))
		return id
	}
	b.seen[key] = true
	b.nw.links = append(b.nw.links, Link{ID: id, A: p, B: q})
	return id
}

// Build finalizes the network. It requires at least one processor and a
// connected topology.
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	nw := &b.nw
	if len(nw.procs) == 0 {
		return nil, fmt.Errorf("system: no processors")
	}
	nw.adj = make([][]Adj, len(nw.procs))
	for _, l := range nw.links {
		nw.adj[l.A] = append(nw.adj[l.A], Adj{Proc: l.B, Link: l.ID})
		nw.adj[l.B] = append(nw.adj[l.B], Adj{Proc: l.A, Link: l.ID})
	}
	for i := range nw.adj {
		sort.Slice(nw.adj[i], func(a, b int) bool { return nw.adj[i][a].Proc < nw.adj[i][b].Proc })
	}
	if !nw.IsConnected() {
		return nil, fmt.Errorf("system: topology is not connected")
	}
	return nw, nil
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}
