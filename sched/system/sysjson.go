package system

import (
	"encoding/json"
	"fmt"
	"io"
)

// systemJSON is the on-disk representation of a full heterogeneous
// system: the network plus the execution and communication factor
// matrices. A missing/empty comm matrix means homogeneous links, exactly
// like a nil System.Comm.
type systemJSON struct {
	Network json.RawMessage `json:"network"`
	Exec    [][]float64     `json:"exec"`
	Comm    [][]float64     `json:"comm,omitempty"`
}

// MarshalJSON encodes the complete system: network topology and factor
// matrices.
func (s *System) MarshalJSON() ([]byte, error) {
	nw, err := s.Net.MarshalJSON()
	if err != nil {
		return nil, err
	}
	return json.Marshal(systemJSON{Network: nw, Exec: s.Exec, Comm: s.Comm})
}

// SystemFromJSON decodes a system previously written by System.MarshalJSON
// and validates the factor matrices against the decoded network (row
// counts are taken from the matrices themselves; validate against a task
// graph via sched.Problem).
func SystemFromJSON(data []byte) (*System, error) {
	var j systemJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, fmt.Errorf("system: decode: %w", err)
	}
	if len(j.Network) == 0 {
		return nil, fmt.Errorf("system: decode: missing network")
	}
	nw, err := FromJSON(j.Network)
	if err != nil {
		return nil, err
	}
	s := &System{Net: nw, Exec: j.Exec, Comm: j.Comm}
	if len(s.Comm) == 0 {
		s.Comm = nil
	}
	if err := s.Validate(len(s.Exec), len(s.Comm)); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadSystemJSON decodes a system from r.
func ReadSystemJSON(r io.Reader) (*System, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return SystemFromJSON(data)
}

// WriteJSON writes the system to w as indented JSON.
func (s *System) WriteJSON(w io.Writer) error {
	data, err := s.MarshalJSON()
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(json.RawMessage(data), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}
