package system

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// seedGolden adds the committed golden interchange files with the given
// extension as fuzz seeds (the four evaluation topologies plus the five
// workload families — the graph files are rejected inputs, which is a
// useful seed class too).
func seedGolden(f *testing.F, ext string) {
	paths, err := filepath.Glob(filepath.Join("..", "gen", "testdata", "golden", "*."+ext))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// FuzzSystemFromDOT: the network DOT loader must never panic, and any
// accepted input must round-trip through WriteDOT byte-identically.
func FuzzSystemFromDOT(f *testing.F) {
	seedGolden(f, "dot")
	f.Add([]byte("graph \"r\" {\n  p0 [label=\"P1\"];\n  p1 [label=\"P2\"];\n  p0 -- p1;\n}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		nw, title, err := FromDOT(data)
		if err != nil {
			return
		}
		var s1 bytes.Buffer
		if err := nw.WriteDOT(&s1, title); err != nil {
			t.Fatalf("save(load(x)): %v", err)
		}
		nw2, title2, err := FromDOT(s1.Bytes())
		if err != nil {
			t.Fatalf("load(save(load(x))) rejected canonical output: %v\ninput: %q\ncanonical: %q", err, data, s1.Bytes())
		}
		if title2 != title {
			t.Fatalf("title changed across round-trip: %q -> %q", title, title2)
		}
		var s2 bytes.Buffer
		if err := nw2.WriteDOT(&s2, title2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatalf("canonical DOT is not a fixpoint:\nfirst:  %q\nsecond: %q", s1.Bytes(), s2.Bytes())
		}
	})
}

// FuzzSystemFromJSON: the full-system JSON loader (network + factor
// matrices) must never panic; accepted inputs round-trip byte-identically
// and still pass Validate with their own dimensions.
func FuzzSystemFromJSON(f *testing.F) {
	seedGolden(f, "json")
	// A complete heterogeneous system seed: the golden files only cover
	// bare networks, so build one full-system document in code.
	if nw, err := Ring(3); err == nil {
		sys := NewUniform(nw, 2, 1)
		sys.Comm = [][]float64{{1, 2, 3}}
		sys.Exec[0][1] = 4.5
		if data, err := sys.MarshalJSON(); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := SystemFromJSON(data)
		if err != nil {
			return
		}
		s1, err := sys.MarshalJSON()
		if err != nil {
			t.Fatalf("save(load(x)): %v", err)
		}
		sys2, err := SystemFromJSON(s1)
		if err != nil {
			t.Fatalf("load(save(load(x))) rejected canonical output: %v\ninput: %q\ncanonical: %q", err, data, s1)
		}
		if err := sys2.Validate(len(sys.Exec), len(sys.Comm)); err != nil {
			t.Fatalf("reloaded system fails Validate: %v", err)
		}
		s2, err := sys2.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1, s2) {
			t.Fatalf("canonical JSON is not a fixpoint:\nfirst:  %q\nsecond: %q", s1, s2)
		}
	})
}
