package system_test

import (
	"fmt"

	"repro/sched/system"
)

// ExampleTorus2D builds a 4x4 torus: a mesh whose rows and columns wrap
// around, so every processor has exactly four neighbours.
func ExampleTorus2D() {
	nw, err := system.Torus2D(4, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d processors, %d links, degree %d\n",
		nw.NumProcs(), nw.NumLinks(), nw.Degree(0))
	// Output: 16 processors, 32 links, degree 4
}

// ExampleFatTree builds a two-level leaf-spine fabric: 2 spines, each
// connected to all 6 leaves. Leaf-to-leaf messages cross a spine and
// contend there.
func ExampleFatTree() {
	nw, err := system.FatTree(2, 6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d processors, %d links, spine degree %d\n",
		nw.NumProcs(), nw.NumLinks(), nw.Degree(0))
	// Output: 8 processors, 12 links, spine degree 6
}

// ExampleHierarchical builds a NUMA-like fabric: two cliques of four,
// joined by a single leader-to-leader link — the scarce resource a
// contention-aware scheduler must respect.
func ExampleHierarchical() {
	nw, err := system.Hierarchical(2, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d processors, %d links (%d per group + 1 between)\n",
		nw.NumProcs(), nw.NumLinks(), 6)
	// Output: 8 processors, 13 links (6 per group + 1 between)
}
