// Package system models the public heterogeneous target system: a
// processor Network joined by undirected communication links, and the
// System heterogeneity factor matrices scaling nominal task and message
// costs per processor and per link.
//
// Networks are built with a Builder or the topology constructors used in
// the paper's evaluation (Ring, Hypercube, FullyConnected,
// RandomConnected, plus Mesh2D, Star, BinaryTree, Line), loaded/saved as
// JSON or Graphviz DOT, and expose breadth-first processor orders (used
// by BSA's pivot sweep) and shortest-path routing tables (used by the
// DLS baseline). A link is a single half-duplex resource: one message
// occupies it at a time regardless of direction, matching the per-link
// Gantt rows of the paper's Figure 2.
//
// A System couples a network with the factor matrices h_ix (task i on
// processor x) and h'_ijxy (message ij on link xy) of the paper for a
// specific graph size; see NewUniform, NewRandom, NewRandomNormalized and
// NewRandomMinNormalized for the factory models, and SystemFromJSON /
// System.WriteJSON for interchange.
package system
