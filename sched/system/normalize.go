package system

// RouteNormalizer splices loops out of link routes exactly like
// NormalizeRoute, but rewrites the route in place and reuses its internal
// buffers across calls, so a scheduler pruning routes on every migration
// commit performs no per-call allocations. A normalizer must not be shared
// between goroutines.
type RouteNormalizer struct {
	lastAt []int32  // last index of each processor in the current walk
	procs  []ProcID // scratch: the processor sequence of the walk
}

// NewRouteNormalizer returns a normalizer for networks with numProcs
// processors.
func NewRouteNormalizer(numProcs int) *RouteNormalizer {
	return &RouteNormalizer{lastAt: make([]int32, numProcs)}
}

// Normalize removes cycles from route, which must start at src: whenever
// the walk revisits a processor, the intervening loop is spliced out. The
// route is rewritten in place and the shortened prefix returned; the
// result is identical to NormalizeRoute's.
func (rn *RouteNormalizer) Normalize(nw *Network, src ProcID, route []LinkID) []LinkID {
	if len(route) == 0 {
		return route
	}
	procs := append(rn.procs[:0], src)
	p := src
	for _, l := range route {
		p = nw.Link(l).Other(p)
		procs = append(procs, p)
	}
	rn.procs = procs
	// Only entries for processors on the walk are read, so lastAt needs no
	// clearing between calls.
	for i, q := range procs {
		rn.lastAt[q] = int32(i)
	}
	// The write position k never passes the read position j (k <= i <= j),
	// so compacting into the route's own prefix is safe.
	k := 0
	for i := 0; i < len(procs)-1; {
		j := int(rn.lastAt[procs[i]])
		if j >= len(procs)-1 {
			break
		}
		route[k] = route[j]
		k++
		i = j + 1
	}
	return route[:k]
}
