// This file models processor and link heterogeneity: the factor matrices
// h_ix (task i on processor x) and h'_ijxy (message ij on link xy) of the
// paper. Actual costs are nominal costs multiplied by these factors;
// nominal costs represent the fastest (reference) resource, so factors are
// >= 1 in the paper's experiments (factor generators enforce lo >= something
// positive but accept any positive range).

package system

import (
	"fmt"
	"math"
	"math/rand"
)

// System couples a network with heterogeneity factor matrices for a
// specific task graph size. Exec[t][p] scales task t's nominal execution
// cost on processor p; Comm[e][l] scales message e's nominal communication
// cost on link l. A nil Comm means homogeneous links (factor 1), as in the
// paper's worked example.
type System struct {
	Net  *Network
	Exec [][]float64
	Comm [][]float64
}

// NewUniform returns a System over nw in which every factor is 1 — a
// homogeneous system, useful as a baseline and in tests.
func NewUniform(nw *Network, nTasks, nEdges int) *System {
	s := &System{Net: nw, Exec: make([][]float64, nTasks)}
	m := nw.NumProcs()
	for i := range s.Exec {
		row := make([]float64, m)
		for j := range row {
			row[j] = 1
		}
		s.Exec[i] = row
	}
	_ = nEdges // Comm stays nil: all link factors are 1.
	return s
}

// NewRandom returns a System whose execution factors are drawn uniformly
// from [lo, hi] per (task, processor) pair and whose communication factors
// are drawn uniformly from [lo, hi] per (edge, link) pair, matching the
// paper's experimental setup ("heterogeneity factors were selected randomly
// from a uniform distribution with range [1, 50]").
func NewRandom(nw *Network, nTasks, nEdges int, lo, hi float64, rng *rand.Rand) (*System, error) {
	if lo <= 0 || hi < lo {
		return nil, fmt.Errorf("system: invalid factor range [%v, %v]", lo, hi)
	}
	s := &System{
		Net:  nw,
		Exec: make([][]float64, nTasks),
		Comm: make([][]float64, nEdges),
	}
	draw := func() float64 { return lo + rng.Float64()*(hi-lo) }
	m := nw.NumProcs()
	for i := range s.Exec {
		row := make([]float64, m)
		for j := range row {
			row[j] = draw()
		}
		s.Exec[i] = row
	}
	nl := nw.NumLinks()
	for i := range s.Comm {
		row := make([]float64, nl)
		for j := range row {
			row[j] = draw()
		}
		s.Comm[i] = row
	}
	return s, nil
}

// NewRandomNormalized draws factors uniformly from [lo, hi] and rescales
// them by 2/(lo+hi) so their mean is 1. Widening the range then increases
// the *variance* of actual costs while keeping their scale fixed, which is
// the only reading consistent with the paper's Figure 7 (schedule lengths
// grow ~30% when the heterogeneity range grows from [1,10] to [1,200];
// unnormalized multiplicative factors would grow them ~20x). See DESIGN.md.
func NewRandomNormalized(nw *Network, nTasks, nEdges int, lo, hi float64, rng *rand.Rand) (*System, error) {
	s, err := NewRandom(nw, nTasks, nEdges, lo, hi, rng)
	if err != nil {
		return nil, err
	}
	scale := 2 / (lo + hi)
	for i := range s.Exec {
		for j := range s.Exec[i] {
			s.Exec[i][j] *= scale
		}
	}
	for i := range s.Comm {
		for j := range s.Comm[i] {
			s.Comm[i][j] *= scale
		}
	}
	return s, nil
}

// NewRandomMinNormalized draws factors uniformly from [lo, hi] and rescales
// each task's row (and each edge's row) so its minimum is exactly 1: the
// fastest processor for a task then runs it at the nominal cost, which is
// the paper's literal statement that "the nominal execution and
// communication costs in each graph represented the costs of the fastest
// processor". Widening [lo, hi] increases the penalty of every non-optimal
// placement while the best-case stays fixed, reproducing Figure 7's mild
// schedule-length growth with the heterogeneity range. This is the model
// the experiment harness uses; see DESIGN.md §3.
func NewRandomMinNormalized(nw *Network, nTasks, nEdges int, lo, hi float64, rng *rand.Rand) (*System, error) {
	s, err := NewRandom(nw, nTasks, nEdges, lo, hi, rng)
	if err != nil {
		return nil, err
	}
	normalizeRows(s.Exec)
	normalizeRows(s.Comm)
	return s, nil
}

func normalizeRows(rows [][]float64) {
	for _, row := range rows {
		if len(row) == 0 {
			continue
		}
		min := row[0]
		for _, f := range row[1:] {
			if f < min {
				min = f
			}
		}
		for j := range row {
			row[j] /= min
		}
	}
}

// ExecFactor returns h_ix for task t on processor p.
func (s *System) ExecFactor(t int, p ProcID) float64 { return s.Exec[t][p] }

// CommFactor returns h'_ijxy for edge e on link l (1 when Comm is nil).
func (s *System) CommFactor(e int, l LinkID) float64 {
	if s.Comm == nil {
		return 1
	}
	return s.Comm[e][l]
}

// ExecCost returns the actual execution cost of a task with nominal cost
// tau on processor p.
func (s *System) ExecCost(t int, p ProcID, tau float64) float64 {
	return s.Exec[t][p] * tau
}

// CommCost returns the actual communication cost of edge e with nominal
// cost c on link l.
func (s *System) CommCost(e int, l LinkID, c float64) float64 {
	return s.CommFactor(e, l) * c
}

// ExecCostsOn returns the actual execution costs of all tasks on processor
// p, given their nominal costs.
func (s *System) ExecCostsOn(p ProcID, nominal []float64) []float64 {
	out := make([]float64, len(nominal))
	for i, tau := range nominal {
		out[i] = s.Exec[i][p] * tau
	}
	return out
}

// MedianExecFactorCost returns, per task, the median over processors of the
// actual execution cost — the E*(t) used by DLS's heterogeneity adjustment.
func (s *System) MedianExecFactorCost(nominal []float64) []float64 {
	m := s.Net.NumProcs()
	out := make([]float64, len(nominal))
	buf := make([]float64, m)
	for i, tau := range nominal {
		copy(buf, s.Exec[i])
		insertionSort(buf)
		var med float64
		if m%2 == 1 {
			med = buf[m/2]
		} else {
			med = (buf[m/2-1] + buf[m/2]) / 2
		}
		out[i] = med * tau
	}
	return out
}

// FactorError is reported by Validate for a factor matrix entry that is
// not a positive, finite number. NaN and ±Inf entries are rejected at
// the boundary — loaded from JSON they would otherwise poison every
// timeline computed from the system.
type FactorError struct {
	Matrix   string // "Exec" or "Comm"
	Row, Col int
	Value    float64
}

func (e *FactorError) Error() string {
	if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) {
		return fmt.Sprintf("system: %s[%d][%d]=%v must be finite", e.Matrix, e.Row, e.Col, e.Value)
	}
	return fmt.Sprintf("system: %s[%d][%d]=%v must be positive", e.Matrix, e.Row, e.Col, e.Value)
}

// Validate checks matrix dimensions against a task/edge count and that all
// factors are positive and finite (*FactorError otherwise).
func (s *System) Validate(nTasks, nEdges int) error {
	if s.Net == nil {
		return fmt.Errorf("system: nil network")
	}
	if len(s.Exec) != nTasks {
		return fmt.Errorf("system: Exec has %d rows, want %d", len(s.Exec), nTasks)
	}
	m := s.Net.NumProcs()
	for i, row := range s.Exec {
		if len(row) != m {
			return fmt.Errorf("system: Exec[%d] has %d cols, want %d", i, len(row), m)
		}
		for j, f := range row {
			if !(f > 0) || math.IsInf(f, 0) {
				return &FactorError{Matrix: "Exec", Row: i, Col: j, Value: f}
			}
		}
	}
	if s.Comm != nil {
		if len(s.Comm) != nEdges {
			return fmt.Errorf("system: Comm has %d rows, want %d", len(s.Comm), nEdges)
		}
		nl := s.Net.NumLinks()
		for i, row := range s.Comm {
			if len(row) != nl {
				return fmt.Errorf("system: Comm[%d] has %d cols, want %d", i, len(row), nl)
			}
			for j, f := range row {
				if !(f > 0) || math.IsInf(f, 0) {
					return &FactorError{Matrix: "Comm", Row: i, Col: j, Value: f}
				}
			}
		}
	}
	return nil
}

func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
