package system

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRing(t *testing.T) {
	nw, err := Ring(16)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumProcs() != 16 || nw.NumLinks() != 16 {
		t.Fatalf("ring16: m=%d links=%d", nw.NumProcs(), nw.NumLinks())
	}
	for p := 0; p < 16; p++ {
		if nw.Degree(ProcID(p)) != 2 {
			t.Fatalf("ring degree(%d)=%d", p, nw.Degree(ProcID(p)))
		}
	}
}

func TestRingSmall(t *testing.T) {
	if nw, err := Ring(1); err != nil || nw.NumLinks() != 0 {
		t.Errorf("ring1: %v %v", nw, err)
	}
	if nw, err := Ring(2); err != nil || nw.NumLinks() != 1 {
		t.Errorf("ring2: %v %v", nw, err)
	}
	if nw, err := Ring(3); err != nil || nw.NumLinks() != 3 {
		t.Errorf("ring3: %v %v", nw, err)
	}
	if _, err := Ring(0); err == nil {
		t.Error("ring0 should fail")
	}
}

func TestFullyConnected(t *testing.T) {
	nw, err := FullyConnected(16)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumLinks() != 16*15/2 {
		t.Fatalf("clique16 links=%d, want 120", nw.NumLinks())
	}
	for p := 0; p < 16; p++ {
		if nw.Degree(ProcID(p)) != 15 {
			t.Fatalf("clique degree=%d", nw.Degree(ProcID(p)))
		}
	}
}

func TestHypercube(t *testing.T) {
	nw, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumProcs() != 16 || nw.NumLinks() != 32 {
		t.Fatalf("hcube4: m=%d links=%d, want 16/32", nw.NumProcs(), nw.NumLinks())
	}
	for p := 0; p < 16; p++ {
		if nw.Degree(ProcID(p)) != 4 {
			t.Fatalf("hcube degree=%d, want 4", nw.Degree(ProcID(p)))
		}
	}
	// Neighbours differ in exactly one bit.
	for _, l := range nw.Links() {
		x := int(l.A) ^ int(l.B)
		if x&(x-1) != 0 {
			t.Fatalf("link %v joins non-adjacent hypercube nodes", l)
		}
	}
	if _, err := Hypercube(-1); err == nil {
		t.Error("negative dim should fail")
	}
	if nw, err := Hypercube(0); err != nil || nw.NumProcs() != 1 {
		t.Error("hypercube(0) is a single processor")
	}
}

func TestMesh2D(t *testing.T) {
	nw, err := Mesh2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumProcs() != 12 || nw.NumLinks() != 3*3+2*4 {
		t.Fatalf("mesh3x4: m=%d links=%d, want 12/17", nw.NumProcs(), nw.NumLinks())
	}
	if _, err := Mesh2D(0, 3); err == nil {
		t.Error("mesh 0x3 should fail")
	}
}

func TestTorus2D(t *testing.T) {
	nw, err := Torus2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Full wraparound: every processor has degree 4, links = 2*m.
	if nw.NumProcs() != 12 || nw.NumLinks() != 24 {
		t.Fatalf("torus3x4: m=%d links=%d, want 12/24", nw.NumProcs(), nw.NumLinks())
	}
	for p := 0; p < 12; p++ {
		if nw.Degree(ProcID(p)) != 4 {
			t.Fatalf("torus degree(%d)=%d, want 4", p, nw.Degree(ProcID(p)))
		}
	}
	// Dimensions of length 2 get no wraparound (it would duplicate the
	// mesh link), so a 2x4 torus only closes the rows.
	small, err := Torus2D(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumLinks() != 2*3+4+2 {
		t.Fatalf("torus2x4 links=%d, want 12", small.NumLinks())
	}
	// 1x1 and 2x2 degenerate to the mesh.
	if nw, err := Torus2D(2, 2); err != nil || nw.NumLinks() != 4 {
		t.Errorf("torus2x2: %v links=%d, want mesh's 4", err, nw.NumLinks())
	}
	if _, err := Torus2D(0, 3); err == nil {
		t.Error("torus 0x3 should fail")
	}
}

func TestFatTree(t *testing.T) {
	nw, err := FatTree(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumProcs() != 8 || nw.NumLinks() != 12 {
		t.Fatalf("fattree2x6: m=%d links=%d, want 8/12", nw.NumProcs(), nw.NumLinks())
	}
	// Spines see every leaf; leaves see every spine and no other leaf.
	for s := 0; s < 2; s++ {
		if nw.Degree(ProcID(s)) != 6 {
			t.Fatalf("spine degree=%d, want 6", nw.Degree(ProcID(s)))
		}
	}
	for l := 2; l < 8; l++ {
		if nw.Degree(ProcID(l)) != 2 {
			t.Fatalf("leaf degree=%d, want 2", nw.Degree(ProcID(l)))
		}
	}
	for _, link := range nw.Links() {
		if link.A >= 2 && link.B >= 2 {
			t.Fatalf("leaf-leaf link %v in a bipartite fabric", link)
		}
	}
	if _, err := FatTree(0, 4); err == nil {
		t.Error("fat-tree without spines should fail")
	}
	if _, err := FatTree(2, 0); err == nil {
		t.Error("fat-tree without leaves should fail")
	}
}

func TestHierarchical(t *testing.T) {
	nw, err := Hierarchical(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 cliques of 4 (6 links each) + a 3-leader ring.
	if nw.NumProcs() != 12 || nw.NumLinks() != 3*6+3 {
		t.Fatalf("hier3x4: m=%d links=%d, want 12/21", nw.NumProcs(), nw.NumLinks())
	}
	// Non-leader cross-group links must not exist.
	for _, l := range nw.Links() {
		ga, gb := int(l.A)/4, int(l.B)/4
		if ga != gb && (int(l.A)%4 != 0 || int(l.B)%4 != 0) {
			t.Fatalf("non-leader inter-group link %v", l)
		}
	}
	// Two groups share exactly one link.
	two, err := Hierarchical(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if two.NumLinks() != 2*3+1 {
		t.Fatalf("hier2x3 links=%d, want 7", two.NumLinks())
	}
	// Degenerate shapes: one group is a clique, groups of one a ring.
	if nw, err := Hierarchical(1, 5); err != nil || nw.NumLinks() != 10 {
		t.Errorf("hier1x5: %v links=%d, want clique's 10", err, nw.NumLinks())
	}
	if nw, err := Hierarchical(5, 1); err != nil || nw.NumLinks() != 5 {
		t.Errorf("hier5x1: %v links=%d, want ring's 5", err, nw.NumLinks())
	}
	if _, err := Hierarchical(0, 2); err == nil {
		t.Error("hierarchical 0x2 should fail")
	}
}

func TestStarAndTreeAndLine(t *testing.T) {
	nw, err := Star(8)
	if err != nil || nw.Degree(0) != 7 {
		t.Errorf("star: %v deg=%d", err, nw.Degree(0))
	}
	bt, err := BinaryTree(7)
	if err != nil || bt.NumLinks() != 6 || bt.Degree(0) != 2 {
		t.Errorf("binary tree: %v", err)
	}
	ln, err := Line(5)
	if err != nil || ln.NumLinks() != 4 {
		t.Errorf("line: %v", err)
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		nw, err := RandomConnected(16, 2, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		if nw.NumProcs() != 16 {
			t.Fatalf("m=%d", nw.NumProcs())
		}
		if !nw.IsConnected() {
			t.Fatal("random topology must be connected")
		}
		for p := 0; p < 16; p++ {
			d := nw.Degree(ProcID(p))
			if d < 2 || d > 8 {
				t.Fatalf("trial %d: degree(%d)=%d outside [2,8]", trial, p, d)
			}
		}
	}
}

func TestRandomConnectedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomConnected(0, 2, 8, rng); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := RandomConnected(4, 0, 8, rng); err == nil {
		t.Error("minDeg=0 should fail for m>1")
	}
	if _, err := RandomConnected(4, 5, 6, rng); err == nil {
		t.Error("minDeg > m-1 should fail")
	}
	if _, err := RandomConnected(4, 3, 2, rng); err == nil {
		t.Error("minDeg > maxDeg should fail")
	}
	if nw, err := RandomConnected(1, 1, 1, rng); err != nil || nw.NumProcs() != 1 {
		t.Error("single processor network should build")
	}
}

func TestRandomConnectedProperty(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + int(mRaw)%30
		minDeg := 1 + rng.Intn(2)
		if minDeg > m-1 {
			minDeg = m - 1
		}
		maxDeg := minDeg + 2 + rng.Intn(6)
		nw, err := RandomConnected(m, minDeg, maxDeg, rng)
		if err != nil {
			// Tight constraints may be unsatisfiable; that is an accepted
			// outcome as long as it is reported, not a panic.
			return true
		}
		if !nw.IsConnected() {
			return false
		}
		for p := 0; p < m; p++ {
			d := nw.Degree(ProcID(p))
			if d < minDeg || d > maxDeg {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
