package sched

// Config is the resolved set of run options. Adapters read it; callers
// build it implicitly through Options. The zero value of every knob that
// an algorithm consults is that algorithm's published default, so an
// empty option list reproduces the paper's configurations exactly.
//
// Options an algorithm does not understand are simply ignored — one
// option list can drive a heterogeneous algorithm sweep.
type Config struct {
	// Seed drives tie-breaking RNGs (BSA's critical-path tie breaks).
	Seed int64

	// Workers bounds intra-run parallelism for algorithms that have any
	// (BSA's speculative candidate evaluation: batch evaluation on the
	// cache-off engine, parallel row prefetch on the cached engine).
	// 0 means GOMAXPROCS, 1 forces sequential evaluation; the schedule is
	// identical either way.
	Workers int

	// Backend selects BSA's schedule-state backend by name: "soa"
	// (structure-of-arrays slot state, no strip/restore churn) or
	// "reference" (the original lazily-stripped timelines). Empty picks
	// per topology — the backends produce byte-identical schedules
	// (conformance-tested), so the choice is purely a speed trade.
	Backend string

	// FullRebuild selects BSA's legacy full-rebuild engine, the
	// correctness oracle of the incremental engine.
	FullRebuild bool

	// Insertion schedules DLS message hops into link idle gaps instead
	// of appending after the link's last use (a strictly stronger
	// baseline than Sih & Lee's published rule).
	Insertion bool

	// MaxSweeps bounds BSA's breadth-first pivot sweeps. 0 means "until
	// fixpoint"; 1 reproduces the paper's literal single-sweep
	// pseudocode.
	MaxSweeps int

	// GuardSlack is the relative schedule-length regression BSA's
	// migration guard tolerates. 0 means the engine default; negative
	// means a strict no-regression guard.
	GuardSlack float64

	// VIPFollow, RoutePruning, MigrationGuard, HeterogeneityAdjust and
	// CandidateCache are ablation knobs; all default to on (the published
	// algorithms, on the fastest engine configuration).
	VIPFollow           bool
	RoutePruning        bool
	MigrationGuard      bool
	HeterogeneityAdjust bool

	// CandidateCache enables BSA's sweep-level candidate cache: candidate
	// finish-time rows are memoized and a committed migration re-evaluates
	// only the rows and entries its dependency cone touched. Schedules are
	// byte-identical with the cache on or off; only the evaluation count
	// changes. On by default.
	CandidateCache bool
}

// Option customizes one Schedule call.
type Option func(*Config)

// NewConfig resolves an option list against the defaults. Adapters call
// this; applications rarely need to.
func NewConfig(opts ...Option) Config {
	cfg := Config{
		VIPFollow:           true,
		RoutePruning:        true,
		MigrationGuard:      true,
		HeterogeneityAdjust: true,
		CandidateCache:      true,
	}
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return cfg
}

// WithSeed sets the tie-breaking RNG seed.
func WithSeed(seed int64) Option { return func(c *Config) { c.Seed = seed } }

// WithWorkers bounds intra-run worker goroutines (0 = GOMAXPROCS,
// 1 = sequential). Results are identical for every value; the pool
// serves speculative candidate evaluation on both BSA engines (batch
// evaluation cache-off, row prefetch cache-on).
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithBackend selects BSA's schedule-state backend ("soa" or
// "reference"; empty picks per topology). Schedules are byte-identical
// across backends — the knob trades speed, never output.
func WithBackend(name string) Option { return func(c *Config) { c.Backend = name } }

// WithFullRebuild toggles BSA's legacy full-rebuild oracle engine.
func WithFullRebuild(on bool) Option { return func(c *Config) { c.FullRebuild = on } }

// WithInsertion toggles DLS insertion-based link scheduling.
func WithInsertion(on bool) Option { return func(c *Config) { c.Insertion = on } }

// WithMaxSweeps bounds BSA's pivot sweeps (0 = until fixpoint).
func WithMaxSweeps(n int) Option { return func(c *Config) { c.MaxSweeps = n } }

// WithGuardSlack sets BSA's migration-guard regression tolerance
// (0 = engine default, negative = strict).
func WithGuardSlack(slack float64) Option { return func(c *Config) { c.GuardSlack = slack } }

// WithVIPFollow toggles BSA's VIP-following migration rule (ablation).
func WithVIPFollow(on bool) Option { return func(c *Config) { c.VIPFollow = on } }

// WithRoutePruning toggles BSA's route loop splicing (ablation).
func WithRoutePruning(on bool) Option { return func(c *Config) { c.RoutePruning = on } }

// WithMigrationGuard toggles BSA's bubble-up migration guard (ablation).
func WithMigrationGuard(on bool) Option { return func(c *Config) { c.MigrationGuard = on } }

// WithHeterogeneityAdjust toggles DLS's Delta(t,p) term (ablation).
func WithHeterogeneityAdjust(on bool) Option { return func(c *Config) { c.HeterogeneityAdjust = on } }

// WithCandidateCache toggles BSA's sweep-level candidate cache (ablation;
// default on). Results are identical either way — the knob exists so the
// ablation harness can measure the cache, not to trade accuracy for speed.
func WithCandidateCache(on bool) Option { return func(c *Config) { c.CandidateCache = on } }
