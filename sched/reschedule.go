package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/schedule"
	"repro/sched/graph"
	"repro/sched/system"
)

// ErrIncompleteResult is reported by Reschedule when the previous result
// carries no complete schedule to warm-start from.
var ErrIncompleteResult = errors.New("sched: reschedule requires a previous result with a complete schedule")

// Reschedule is the quasi-dynamic entry point: it applies delta to the
// problem prev was computed for and reconverges BSA starting from prev's
// schedule instead of from scratch.
//
// The warm start adopts the previous schedule as the engine's ground
// truth — the serialization is the previous start-time order (appended
// tasks join at the end in topological order), assignments and routes
// carry over, with tasks on removed processors falling back to the
// nearest surviving neighbour and severed routes re-routed shortest-path
// — and then runs BSA's breadth-first migration sweeps restricted to the
// dirty frontier the delta actually touched. After each kept migration
// the frontier grows by exactly that commit's dependency cone (the
// candidate cache's commit stamps), so reconvergence after a small delta
// evaluates a small fraction of the candidates a cold run would
// (Result.Stats "evaluations", "dirty_tasks").
//
// prev may come from any registered algorithm — only its Schedule is
// used. The result is a fresh, complete, validated schedule for the
// post-delta problem (obtainable separately via Delta.Apply), with
// Algorithm "bsa" and a *RescheduleTrace attached. Reschedule is
// deterministic: the same prev, delta and options produce a byte-
// identical schedule, wherever it runs.
//
// Typed errors: ErrIncompleteResult for an unusable prev, and the
// Delta.Apply family (*UnknownProcError, *DisconnectedError, ...) for a
// delta that does not resolve against prev's problem. ctx is polled
// between migration decisions exactly as in Scheduler.Schedule.
func Reschedule(ctx context.Context, prev Result, delta Delta, opts ...Option) (*Result, error) {
	start := time.Now()
	if prev.Schedule == nil || prev.Schedule.s == nil {
		return nil, ErrIncompleteResult
	}
	ps := prev.Schedule.s
	if !ps.Complete() {
		return nil, ErrIncompleteResult
	}
	g, sys := ps.G, ps.Sys

	rd, err := delta.resolve(Problem{Graph: g, System: sys})
	if err != nil {
		return nil, err
	}
	cfg := NewConfig(opts...)

	g2, sys2 := rd.g2, rd.sys2
	n2, oldN := g2.NumTasks(), rd.oldTasks

	dirtySeen := make([]bool, n2)
	var dirty []graph.TaskID
	markDirty := func(t graph.TaskID) {
		if !dirtySeen[t] {
			dirtySeen[t] = true
			dirty = append(dirty, t)
		}
	}

	// Serialization: the previous schedule's start-time order is a linear
	// extension of the old graph (tasks have positive durations, so an
	// edge's sender always starts strictly before its receiver), and
	// appended tasks only depend on earlier tasks, so topological order at
	// the tail keeps the whole order valid.
	serial := make([]graph.TaskID, 0, n2)
	for t := 0; t < oldN; t++ {
		serial = append(serial, graph.TaskID(t))
	}
	sort.Slice(serial, func(i, j int) bool {
		a, b := serial[i], serial[j]
		sa, sb := ps.Tasks[a].Start, ps.Tasks[b].Start
		if sa != sb {
			return sa < sb
		}
		return a < b
	})
	if n2 > oldN {
		topo, err := graph.TopologicalOrder(g2)
		if err != nil {
			return nil, err
		}
		for _, t := range topo {
			if int(t) >= oldN {
				serial = append(serial, t)
			}
		}
	}

	// Assignments carry over; tasks stranded on a removed processor are
	// spread deterministically over its surviving neighbours (or all
	// survivors) instead of piling onto one — the sweeps then fine-tune a
	// balanced adoption rather than drain a hotspot — and join the dirty
	// frontier. Appended tasks start beside their first predecessor.
	assign := make([]system.ProcID, n2)
	fallbacks := make(map[system.ProcID][]system.ProcID)
	for t := 0; t < oldN; t++ {
		p := ps.Tasks[t].Proc
		if np := rd.procMap[p]; np >= 0 {
			assign[t] = np
			continue
		}
		cands, ok := fallbacks[p]
		if !ok {
			cands = fallbackProcs(sys.Net, rd.procMap, p)
			fallbacks[p] = cands
		}
		assign[t] = cands[t%len(cands)]
		markDirty(graph.TaskID(t))
	}
	for _, t := range serial[oldN:] {
		assign[t] = 0
		for _, e := range g2.In(t) {
			assign[t] = assign[g2.Edge(e).From]
			break
		}
		markDirty(t)
	}

	// Routes: a previous route whose links all survived and still connects
	// the adopted endpoints is kept verbatim; anything severed (and every
	// appended edge) is re-routed shortest-path.
	rt := system.NewRoutingTable(sys2.Net)
	routes := make([][]system.LinkID, g2.NumEdges())
	for e := 0; e < g2.NumEdges(); e++ {
		edge := g2.Edge(graph.EdgeID(e))
		src, dst := assign[edge.From], assign[edge.To]
		if src == dst {
			continue
		}
		if e < rd.oldEdges {
			hops := ps.Msgs[e].Hops
			mapped := make([]system.LinkID, 0, len(hops))
			ok := true
			for _, h := range hops {
				nl := rd.linkMap[h.Link]
				if nl < 0 {
					ok = false
					break
				}
				mapped = append(mapped, nl)
			}
			if ok && system.ValidRoute(sys2.Net, src, dst, mapped) {
				routes[e] = mapped
				continue
			}
		}
		routes[e] = rt.Route(src, dst, nil)
	}

	// Factor changes dirty their targets even when the adopted slots end
	// up unchanged: the candidate decision for those tasks changed.
	for _, t := range rd.touched {
		markDirty(t)
	}

	// The previous slots, remapped into the post-delta ID space, let the
	// engine diff its adopted timelines against what actually ran before
	// and widen the frontier by whatever adoption itself displaced.
	prevTasks := make([]schedule.TaskSlot, n2)
	for t := 0; t < oldN; t++ {
		slot := ps.Tasks[t]
		if np := rd.procMap[slot.Proc]; np >= 0 {
			slot.Proc = np
			prevTasks[t] = slot
		}
	}
	prevMsgs := make([]schedule.MsgSlot, g2.NumEdges())
	for e := 0; e < rd.oldEdges; e++ {
		ms := ps.Msgs[e]
		hops := make([]schedule.Hop, 0, len(ms.Hops))
		ok := true
		for _, h := range ms.Hops {
			nl := rd.linkMap[h.Link]
			na, nb := rd.procMap[h.From], rd.procMap[h.To]
			if nl < 0 || na < 0 || nb < 0 {
				ok = false
				break
			}
			hops = append(hops, schedule.Hop{Link: nl, From: na, To: nb, Start: h.Start, End: h.End})
		}
		if !ok {
			continue
		}
		prevMsgs[e] = schedule.MsgSlot{Hops: hops, Arrival: ms.Arrival, Placed: true}
	}

	res, err := core.RescheduleContext(ctx, g2, sys2, core.WarmStart{
		Serial:    serial,
		Assign:    assign,
		Routes:    routes,
		Dirty:     dirty,
		PrevTasks: prevTasks,
		PrevMsgs:  prevMsgs,
	}, core.Options{
		Seed:                  cfg.Seed,
		Backend:               cfg.Backend,
		MaxSweeps:             cfg.MaxSweeps,
		GuardSlack:            cfg.GuardSlack,
		DisableVIPFollow:      !cfg.VIPFollow,
		DisableRoutePruning:   !cfg.RoutePruning,
		DisableMigrationGuard: !cfg.MigrationGuard,
	})
	if err != nil {
		return nil, err
	}

	out := &Result{
		Algorithm: "bsa",
		Schedule:  &Schedule{s: res.Schedule},
		Makespan:  res.Schedule.Length(),
		Elapsed:   time.Since(start),
		Summary: fmt.Sprintf("bsa reschedule: %d delta ops, %d dirty tasks, %d migrations in %d sweeps (%d reverted)",
			delta.NumOps(), res.DirtyTasks, res.Migrations, res.Sweeps, res.Reverted),
		Stats: Stats{
			"delta_ops":      float64(delta.NumOps()),
			"dirty_tasks":    float64(res.DirtyTasks),
			"migrations":     float64(res.Migrations),
			"reverted":       float64(res.Reverted),
			"sweeps":         float64(res.Sweeps),
			"evaluations":    float64(res.Evaluations),
			"rebuilds":       float64(res.Rebuilds),
			"placements":     float64(res.Placements),
			"msg_placements": float64(res.MsgPlacements),
			"cache_hits":     float64(res.CacheHits),
			"cache_partials": float64(res.CachePartials),
			"cache_misses":   float64(res.CacheMisses),
		},
	}
	out.SetTrace(&RescheduleTrace{
		DeltaOps:      delta.NumOps(),
		DirtyTasks:    res.DirtyTasks,
		Serial:        res.Serial,
		Migrations:    res.Migrations,
		Reverted:      res.Reverted,
		Sweeps:        res.Sweeps,
		Evaluations:   res.Evaluations,
		Rebuilds:      res.Rebuilds,
		Placements:    res.Placements,
		MsgPlacements: res.MsgPlacements,
		CacheHits:     res.CacheHits,
		CachePartials: res.CachePartials,
		CacheMisses:   res.CacheMisses,
		RestoredBest:  res.RestoredBest,
	})
	return out, nil
}

// fallbackProcs lists the post-delta processors tasks stranded on removed
// processor p fall back to: its surviving old-network neighbours, or all
// survivors when every neighbour was removed too.
func fallbackProcs(old *system.Network, procMap []system.ProcID, p system.ProcID) []system.ProcID {
	var cands []system.ProcID
	for _, a := range old.Neighbors(p) {
		if np := procMap[a.Proc]; np >= 0 {
			cands = append(cands, np)
		}
	}
	if len(cands) == 0 {
		for _, np := range procMap {
			if np >= 0 {
				cands = append(cands, np)
			}
		}
	}
	return cands // non-empty: resolve guarantees at least one survivor
}
