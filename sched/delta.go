package sched

import (
	"errors"
	"fmt"
	"math"

	"repro/sched/graph"
	"repro/sched/system"
)

// Delta is a typed, immutable description of how a live scheduling
// problem changed: processors or links that disappeared, heterogeneity
// factors that moved, and a task sub-DAG appended to the workload. A
// Delta references everything by name (task names, processor names), so
// it is stable under ID renumbering and round-trips through JSON (see
// DeltaFromJSON). Build one with DeltaBuilder; apply it with Apply to get
// the post-delta Problem, or hand it to Reschedule to warm-start BSA from
// the previous schedule.
//
// Appended edges may run from any task into an appended task, but never
// into a pre-existing task: the append model grows the DAG downstream, so
// the previous schedule's relative order of old tasks stays a valid
// serialization and the warm start only has to reconverge the frontier
// the delta touches.
type Delta struct {
	removeProcs []ProcRemoval
	removeLinks []LinkRemoval
	execFactors []ExecFactorChange
	commFactors []CommFactorChange
	addTasks    []TaskAppend
	addEdges    []EdgeAppend
}

// ProcRemoval removes one processor (and every link touching it).
type ProcRemoval struct {
	Proc string
}

// LinkRemoval removes the link between two named processors.
type LinkRemoval struct {
	A, B string
}

// ExecFactorChange sets the execution heterogeneity factor of one task on
// one processor.
type ExecFactorChange struct {
	Task   string
	Proc   string
	Factor float64
}

// CommFactorChange sets the communication heterogeneity factor of the
// message From->To on the link joining processors LinkA and LinkB.
type CommFactorChange struct {
	From, To     string
	LinkA, LinkB string
	Factor       float64
}

// TaskAppend appends one task with its nominal execution cost.
type TaskAppend struct {
	Name string
	Cost float64
}

// EdgeAppend appends one message edge; To must name an appended task.
type EdgeAppend struct {
	From, To string
	Cost     float64
}

// NumOps returns the total number of operations in the delta.
func (d Delta) NumOps() int {
	return len(d.removeProcs) + len(d.removeLinks) + len(d.execFactors) +
		len(d.commFactors) + len(d.addTasks) + len(d.addEdges)
}

// Empty reports whether the delta contains no operations. Rescheduling
// with an empty delta just reconverges the previous schedule.
func (d Delta) Empty() bool { return d.NumOps() == 0 }

// RemoveProcs returns a copy of the processor removals, in insertion
// order.
func (d Delta) RemoveProcs() []ProcRemoval { return append([]ProcRemoval(nil), d.removeProcs...) }

// RemoveLinks returns a copy of the link removals, in insertion order.
func (d Delta) RemoveLinks() []LinkRemoval { return append([]LinkRemoval(nil), d.removeLinks...) }

// ExecFactors returns a copy of the execution-factor changes, in
// insertion order.
func (d Delta) ExecFactors() []ExecFactorChange {
	return append([]ExecFactorChange(nil), d.execFactors...)
}

// CommFactors returns a copy of the communication-factor changes, in
// insertion order.
func (d Delta) CommFactors() []CommFactorChange {
	return append([]CommFactorChange(nil), d.commFactors...)
}

// AddTasks returns a copy of the appended tasks, in insertion order.
func (d Delta) AddTasks() []TaskAppend { return append([]TaskAppend(nil), d.addTasks...) }

// AddEdges returns a copy of the appended edges, in insertion order.
func (d Delta) AddEdges() []EdgeAppend { return append([]EdgeAppend(nil), d.addEdges...) }

// ErrEmptyDeltaName is reported by DeltaBuilder for an empty task or
// processor name.
var ErrEmptyDeltaName = errors.New("sched: empty name in delta operation")

// DeltaValueError is reported by DeltaBuilder for a factor or cost that
// is not usable: factors must be positive and finite, task costs positive
// and finite, edge costs non-negative and finite.
type DeltaValueError struct {
	Op    string // "set_exec_factor", "set_comm_factor", "add_task", "add_edge"
	Ref   string // human-readable target, e.g. `task "t3" on "P2"`
	Value float64
}

func (e *DeltaValueError) Error() string {
	return fmt.Sprintf("sched: delta %s %s: bad value %v", e.Op, e.Ref, e.Value)
}

// DeltaDuplicateError is reported by DeltaBuilder when the same target is
// operated on twice (two removals of one processor, two factor changes of
// one (task, processor) pair, ...). Duplicates are rejected rather than
// last-wins so a Delta has exactly one meaning.
type DeltaDuplicateError struct {
	Op  string
	Ref string
}

func (e *DeltaDuplicateError) Error() string {
	return fmt.Sprintf("sched: duplicate delta %s %s", e.Op, e.Ref)
}

// UnknownProcError is reported by Apply/Reschedule for a delta operation
// naming a processor that does not exist in the problem (or that the same
// delta removed).
type UnknownProcError struct {
	Name string
}

func (e *UnknownProcError) Error() string {
	return fmt.Sprintf("sched: delta references unknown or removed processor %q", e.Name)
}

// UnknownTaskError is reported by Apply/Reschedule for a delta operation
// naming a task that exists neither in the problem nor among the delta's
// appended tasks.
type UnknownTaskError struct {
	Name string
}

func (e *UnknownTaskError) Error() string {
	return fmt.Sprintf("sched: delta references unknown task %q", e.Name)
}

// UnknownLinkError is reported by Apply/Reschedule when no link joins the
// two named processors (in the post-removal network, for factor changes).
type UnknownLinkError struct {
	A, B string
}

func (e *UnknownLinkError) Error() string {
	return fmt.Sprintf("sched: delta references unknown link %s-%s", e.A, e.B)
}

// UnknownEdgeError is reported by Apply/Reschedule for a
// communication-factor change naming a task pair with no edge.
type UnknownEdgeError struct {
	From, To string
}

func (e *UnknownEdgeError) Error() string {
	return fmt.Sprintf("sched: delta references unknown edge %s->%s", e.From, e.To)
}

// DeltaEdgeTargetError is reported by Apply/Reschedule for an appended
// edge whose target is a pre-existing task. Appended edges may only point
// into appended tasks (see Delta).
type DeltaEdgeTargetError struct {
	From, To string
}

func (e *DeltaEdgeTargetError) Error() string {
	return fmt.Sprintf("sched: delta edge %s->%s targets a pre-existing task; appended edges may only target appended tasks", e.From, e.To)
}

// ErrNoProcessors is reported by Apply/Reschedule when the delta removes
// every processor.
var ErrNoProcessors = errors.New("sched: delta removes every processor")

// DisconnectedError is reported by Apply/Reschedule when the removals
// leave the processor network disconnected.
type DisconnectedError struct {
	// Removed lists the processor names the delta removed.
	Removed []string
}

func (e *DisconnectedError) Error() string {
	return fmt.Sprintf("sched: delta leaves the network disconnected (removed %v)", e.Removed)
}

// DeltaBuilder assembles a Delta incrementally, mirroring graph.Builder:
// methods record the first error encountered and Build returns it.
// Value-level validation (positive finite factors and costs, no duplicate
// targets) happens here; name resolution happens when the delta is
// applied to a concrete Problem, since the same Delta document can be
// aimed at different problems.
type DeltaBuilder struct {
	d   Delta
	err error

	procRem map[string]bool
	linkRem map[[2]string]bool
	execSet map[[2]string]bool
	commSet map[[4]string]bool
	taskAdd map[string]bool
	edgeAdd map[[2]string]bool
}

// NewDeltaBuilder returns an empty DeltaBuilder.
func NewDeltaBuilder() *DeltaBuilder {
	return &DeltaBuilder{
		procRem: make(map[string]bool),
		linkRem: make(map[[2]string]bool),
		execSet: make(map[[2]string]bool),
		commSet: make(map[[4]string]bool),
		taskAdd: make(map[string]bool),
		edgeAdd: make(map[[2]string]bool),
	}
}

func (b *DeltaBuilder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// RemoveProc removes the named processor and every link touching it.
func (b *DeltaBuilder) RemoveProc(name string) *DeltaBuilder {
	if b.err != nil {
		return b
	}
	if name == "" {
		b.fail(ErrEmptyDeltaName)
		return b
	}
	if b.procRem[name] {
		b.fail(&DeltaDuplicateError{Op: "remove_proc", Ref: fmt.Sprintf("%q", name)})
		return b
	}
	b.procRem[name] = true
	b.d.removeProcs = append(b.d.removeProcs, ProcRemoval{Proc: name})
	return b
}

// RemoveLink removes the link between processors a and z.
func (b *DeltaBuilder) RemoveLink(a, z string) *DeltaBuilder {
	if b.err != nil {
		return b
	}
	if a == "" || z == "" {
		b.fail(ErrEmptyDeltaName)
		return b
	}
	key := [2]string{a, z}
	if z < a {
		key = [2]string{z, a}
	}
	if b.linkRem[key] {
		b.fail(&DeltaDuplicateError{Op: "remove_link", Ref: fmt.Sprintf("%s-%s", a, z)})
		return b
	}
	b.linkRem[key] = true
	b.d.removeLinks = append(b.d.removeLinks, LinkRemoval{A: a, B: z})
	return b
}

// SetExecFactor sets the execution heterogeneity factor of task on proc.
func (b *DeltaBuilder) SetExecFactor(task, proc string, factor float64) *DeltaBuilder {
	if b.err != nil {
		return b
	}
	if task == "" || proc == "" {
		b.fail(ErrEmptyDeltaName)
		return b
	}
	if !(factor > 0) || math.IsInf(factor, 0) {
		b.fail(&DeltaValueError{Op: "set_exec_factor", Ref: fmt.Sprintf("task %q on %q", task, proc), Value: factor})
		return b
	}
	key := [2]string{task, proc}
	if b.execSet[key] {
		b.fail(&DeltaDuplicateError{Op: "set_exec_factor", Ref: fmt.Sprintf("task %q on %q", task, proc)})
		return b
	}
	b.execSet[key] = true
	b.d.execFactors = append(b.d.execFactors, ExecFactorChange{Task: task, Proc: proc, Factor: factor})
	return b
}

// SetCommFactor sets the communication heterogeneity factor of the
// message from->to on the link joining processors linkA and linkB.
func (b *DeltaBuilder) SetCommFactor(from, to, linkA, linkB string, factor float64) *DeltaBuilder {
	if b.err != nil {
		return b
	}
	if from == "" || to == "" || linkA == "" || linkB == "" {
		b.fail(ErrEmptyDeltaName)
		return b
	}
	ref := fmt.Sprintf("edge %s->%s on %s-%s", from, to, linkA, linkB)
	if !(factor > 0) || math.IsInf(factor, 0) {
		b.fail(&DeltaValueError{Op: "set_comm_factor", Ref: ref, Value: factor})
		return b
	}
	la, lb := linkA, linkB
	if lb < la {
		la, lb = lb, la
	}
	key := [4]string{from, to, la, lb}
	if b.commSet[key] {
		b.fail(&DeltaDuplicateError{Op: "set_comm_factor", Ref: ref})
		return b
	}
	b.commSet[key] = true
	b.d.commFactors = append(b.d.commFactors, CommFactorChange{From: from, To: to, LinkA: linkA, LinkB: linkB, Factor: factor})
	return b
}

// AddTask appends a task with the given name and nominal execution cost.
func (b *DeltaBuilder) AddTask(name string, cost float64) *DeltaBuilder {
	if b.err != nil {
		return b
	}
	if name == "" {
		b.fail(ErrEmptyDeltaName)
		return b
	}
	if b.taskAdd[name] {
		b.fail(&DeltaDuplicateError{Op: "add_task", Ref: fmt.Sprintf("%q", name)})
		return b
	}
	if !(cost > 0) || math.IsInf(cost, 0) {
		b.fail(&DeltaValueError{Op: "add_task", Ref: fmt.Sprintf("%q", name), Value: cost})
		return b
	}
	b.taskAdd[name] = true
	b.d.addTasks = append(b.d.addTasks, TaskAppend{Name: name, Cost: cost})
	return b
}

// AddEdge appends a message from->to with the given nominal communication
// cost. to must name a task appended by this delta.
func (b *DeltaBuilder) AddEdge(from, to string, cost float64) *DeltaBuilder {
	if b.err != nil {
		return b
	}
	if from == "" || to == "" {
		b.fail(ErrEmptyDeltaName)
		return b
	}
	ref := fmt.Sprintf("%s->%s", from, to)
	if !(cost >= 0) || math.IsInf(cost, 0) {
		b.fail(&DeltaValueError{Op: "add_edge", Ref: ref, Value: cost})
		return b
	}
	key := [2]string{from, to}
	if b.edgeAdd[key] {
		b.fail(&DeltaDuplicateError{Op: "add_edge", Ref: ref})
		return b
	}
	b.edgeAdd[key] = true
	b.d.addEdges = append(b.d.addEdges, EdgeAppend{From: from, To: to, Cost: cost})
	return b
}

// Build finalizes the delta, returning the first error any operation
// recorded. The builder must not be reused afterwards.
func (b *DeltaBuilder) Build() (Delta, error) {
	if b.err != nil {
		return Delta{}, b.err
	}
	return b.d, nil
}

// deltaResolution is a delta applied to a concrete problem: the
// post-delta graph and system plus the old->new resource maps the warm
// start needs to carry placements across.
type deltaResolution struct {
	g2   *graph.Graph
	sys2 *system.System

	// procMap / linkMap translate old IDs to post-delta IDs; -1 = removed.
	procMap []system.ProcID
	linkMap []system.LinkID

	oldTasks int
	oldEdges int

	// touched are post-delta task IDs directly hit by a factor change
	// (their candidate evaluations changed even if their slots did not).
	touched []graph.TaskID
}

// resolve applies the delta to p, producing the post-delta graph, system
// and resource maps. All name resolution and structural validation
// happens here.
func (d Delta) resolve(p Problem) (*deltaResolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g, sys := p.Graph, p.System
	nw := sys.Net

	procByName := make(map[string]system.ProcID, nw.NumProcs())
	for _, pr := range nw.Procs() {
		procByName[pr.Name] = pr.ID
	}
	oldTaskByName := make(map[string]graph.TaskID, g.NumTasks())
	for _, t := range g.Tasks() {
		oldTaskByName[t.Name] = t.ID
	}

	// Resolve removals against the old network.
	procRemoved := make([]bool, nw.NumProcs())
	removedNames := make([]string, 0, len(d.removeProcs))
	for _, rm := range d.removeProcs {
		id, ok := procByName[rm.Proc]
		if !ok {
			return nil, &UnknownProcError{Name: rm.Proc}
		}
		procRemoved[id] = true
		removedNames = append(removedNames, rm.Proc)
	}
	linkRemoved := make([]bool, nw.NumLinks())
	for _, rm := range d.removeLinks {
		a, ok := procByName[rm.A]
		if !ok {
			return nil, &UnknownProcError{Name: rm.A}
		}
		z, ok := procByName[rm.B]
		if !ok {
			return nil, &UnknownProcError{Name: rm.B}
		}
		l, ok := nw.LinkBetween(a, z)
		if !ok {
			return nil, &UnknownLinkError{A: rm.A, B: rm.B}
		}
		linkRemoved[l] = true
	}

	// Rebuild the network minus the removals, keeping survivor order (so
	// processor and link IDs only compact, never shuffle).
	rd := &deltaResolution{
		procMap:  make([]system.ProcID, nw.NumProcs()),
		linkMap:  make([]system.LinkID, nw.NumLinks()),
		oldTasks: g.NumTasks(),
		oldEdges: g.NumEdges(),
	}
	nb := system.NewBuilder()
	survivors := 0
	for _, pr := range nw.Procs() {
		if procRemoved[pr.ID] {
			rd.procMap[pr.ID] = -1
			continue
		}
		rd.procMap[pr.ID] = nb.AddProc(pr.Name)
		survivors++
	}
	if survivors == 0 {
		return nil, ErrNoProcessors
	}
	for _, l := range nw.Links() {
		if linkRemoved[l.ID] || procRemoved[l.A] || procRemoved[l.B] {
			rd.linkMap[l.ID] = -1
			continue
		}
		rd.linkMap[l.ID] = nb.Connect(rd.procMap[l.A], rd.procMap[l.B])
	}
	nw2, err := nb.Build()
	if err != nil {
		// Survivor procs and surviving old links cannot trip the builder's
		// value checks, so the only possible failure is connectivity.
		return nil, &DisconnectedError{Removed: removedNames}
	}

	// Rebuild the graph plus the appended sub-DAG. Old task and edge IDs
	// are preserved because old entries are re-added first, in ID order.
	gb := graph.NewBuilder()
	for _, t := range g.Tasks() {
		gb.AddTask(t.Name, t.Cost)
	}
	for _, ta := range d.addTasks {
		gb.AddTask(ta.Name, ta.Cost)
	}
	for _, e := range g.Edges() {
		gb.AddEdge(e.From, e.To, e.Cost)
	}
	for _, ea := range d.addEdges {
		from, ok := gb.TaskByName(ea.From)
		if !ok {
			return nil, &UnknownTaskError{Name: ea.From}
		}
		to, ok := gb.TaskByName(ea.To)
		if !ok {
			return nil, &UnknownTaskError{Name: ea.To}
		}
		if _, old := oldTaskByName[ea.To]; old {
			return nil, &DeltaEdgeTargetError{From: ea.From, To: ea.To}
		}
		gb.AddEdge(from, to, ea.Cost)
	}
	g2, err := gb.Build()
	if err != nil {
		// Duplicate appended names, bad appended costs, cycles among the
		// appended tasks: surface the graph package's own typed error.
		return nil, err
	}
	rd.g2 = g2

	// Rebuild the factor matrices over the surviving processors and links,
	// appended tasks and edges defaulting to factor 1 (nominal cost).
	m2 := nw2.NumProcs()
	exec2 := make([][]float64, g2.NumTasks())
	for t := range exec2 {
		row := make([]float64, m2)
		if t < rd.oldTasks {
			for _, pr := range nw.Procs() {
				if np := rd.procMap[pr.ID]; np >= 0 {
					row[np] = sys.Exec[t][pr.ID]
				}
			}
		} else {
			for j := range row {
				row[j] = 1
			}
		}
		exec2[t] = row
	}
	var comm2 [][]float64
	if sys.Comm != nil || len(d.commFactors) > 0 {
		nl2 := nw2.NumLinks()
		comm2 = make([][]float64, g2.NumEdges())
		for e := range comm2 {
			row := make([]float64, nl2)
			for j := range row {
				row[j] = 1
			}
			if e < rd.oldEdges && sys.Comm != nil {
				for _, l := range nw.Links() {
					if nlk := rd.linkMap[l.ID]; nlk >= 0 {
						row[nlk] = sys.Comm[e][l.ID]
					}
				}
			}
			comm2[e] = row
		}
	}
	sys2 := &system.System{Net: nw2, Exec: exec2, Comm: comm2}

	// Factor changes resolve against the post-delta graph and network, so
	// they can target appended tasks and edges too.
	task2ByName := make(map[string]graph.TaskID, g2.NumTasks())
	for _, t := range g2.Tasks() {
		task2ByName[t.Name] = t.ID
	}
	proc2ByName := make(map[string]system.ProcID, nw2.NumProcs())
	for _, pr := range nw2.Procs() {
		proc2ByName[pr.Name] = pr.ID
	}
	for _, fc := range d.execFactors {
		t, ok := task2ByName[fc.Task]
		if !ok {
			return nil, &UnknownTaskError{Name: fc.Task}
		}
		pid, ok := proc2ByName[fc.Proc]
		if !ok {
			return nil, &UnknownProcError{Name: fc.Proc}
		}
		sys2.Exec[t][pid] = fc.Factor
		rd.touched = append(rd.touched, t)
	}
	for _, fc := range d.commFactors {
		from, ok := task2ByName[fc.From]
		if !ok {
			return nil, &UnknownTaskError{Name: fc.From}
		}
		to, ok := task2ByName[fc.To]
		if !ok {
			return nil, &UnknownTaskError{Name: fc.To}
		}
		edge, ok := g2.FindEdge(from, to)
		if !ok {
			return nil, &UnknownEdgeError{From: fc.From, To: fc.To}
		}
		a, ok := proc2ByName[fc.LinkA]
		if !ok {
			return nil, &UnknownProcError{Name: fc.LinkA}
		}
		z, ok := proc2ByName[fc.LinkB]
		if !ok {
			return nil, &UnknownProcError{Name: fc.LinkB}
		}
		l, ok := nw2.LinkBetween(a, z)
		if !ok {
			return nil, &UnknownLinkError{A: fc.LinkA, B: fc.LinkB}
		}
		sys2.Comm[edge.ID][l] = fc.Factor
		rd.touched = append(rd.touched, edge.To)
	}
	rd.sys2 = sys2
	return rd, nil
}

// Apply resolves the delta against a problem and returns the post-delta
// Problem: the graph with the appended sub-DAG, the system minus the
// removed processors and links, and the factor changes applied. Appended
// tasks and edges default to heterogeneity factor 1 on every surviving
// resource (override with SetExecFactor / SetCommFactor). Apply validates
// everything and returns typed errors (*UnknownProcError,
// *UnknownTaskError, *UnknownLinkError, *UnknownEdgeError,
// *DeltaEdgeTargetError, *DisconnectedError, ErrNoProcessors, and the
// graph package's builder errors for appended tasks).
func (d Delta) Apply(p Problem) (Problem, error) {
	rd, err := d.resolve(p)
	if err != nil {
		return Problem{}, err
	}
	return Problem{Graph: rd.g2, System: rd.sys2}, nil
}
