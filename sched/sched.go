package sched

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/sched/graph"
	"repro/sched/system"
)

// Problem is one scheduling instance: a precedence-constrained task graph
// to be mapped onto a heterogeneous target system. The system carries the
// processor network and link model, so message routing is part of the
// problem, not of the caller's setup.
type Problem struct {
	Graph  *graph.Graph
	System *system.System
}

// NewProblem bundles a graph and a system after validating that they fit
// together.
func NewProblem(g *graph.Graph, sys *system.System) (Problem, error) {
	p := Problem{Graph: g, System: sys}
	if err := p.Validate(); err != nil {
		return Problem{}, err
	}
	return p, nil
}

// Validate checks that the problem is well-formed: both parts present and
// the system dimensioned for the graph's tasks and edges.
func (p Problem) Validate() error {
	if p.Graph == nil {
		return fmt.Errorf("sched: problem has no task graph")
	}
	if p.System == nil {
		return fmt.Errorf("sched: problem has no target system")
	}
	if err := p.System.Validate(p.Graph.NumTasks(), p.Graph.NumEdges()); err != nil {
		return fmt.Errorf("sched: %w", err)
	}
	return nil
}

// Scheduler is the single interface every algorithm implements. Schedule
// must be safe for concurrent use: implementations hold no mutable state
// across calls.
//
// Schedule observes ctx inside its main loop: a canceled or expired
// context aborts the run and surfaces ctx.Err() (wrapped; test with
// errors.Is).
type Scheduler interface {
	// Name returns the canonical registry name, e.g. "bsa".
	Name() string
	// Schedule maps p's tasks and messages onto p's system.
	Schedule(ctx context.Context, p Problem, opts ...Option) (*Result, error)
}

// Result is the uniform outcome of any Scheduler run.
type Result struct {
	// Algorithm is the canonical name of the scheduler that produced the
	// result.
	Algorithm string

	// Schedule is the complete feasible schedule: task slots and message
	// slots with per-hop link reservations, as a read-only view. It
	// always passes Schedule.Validate.
	Schedule *Schedule

	// Makespan is Schedule.Length(), the paper's "schedule length".
	Makespan float64

	// Elapsed is the wall-clock time the run took.
	Elapsed time.Duration

	// Summary is a one-line human-readable account of the run in the
	// algorithm's own terms (pivot, migrations, pinned processor, ...).
	Summary string

	// Stats carries the algorithm's numeric counters under documented
	// keys (see each adapter in repro/sched/register). Keys differ per
	// algorithm; shared ones include "evaluations".
	Stats Stats

	// trace is the algorithm-specific structured trace, reachable through
	// the typed accessors (BSA, DLS, HEFT, CPOP) or TraceAny.
	trace any
}

// SetTrace attaches the algorithm-specific structured trace to the
// result. Algorithm adapters call it; the built-in algorithms attach
// *BSATrace, *DLSTrace, *HEFTTrace or *CPOPTrace, reachable through the
// typed accessors below. Third-party Scheduler implementations may attach
// any type of their own and document it.
func (r *Result) SetTrace(trace any) { r.trace = trace }

// TraceAny returns the raw attached trace, or nil. Prefer the typed
// accessors; TraceAny exists for third-party algorithms whose trace types
// this package cannot know.
func (r *Result) TraceAny() any { return r.trace }

// BSA returns the BSA trace when the result was produced by the "bsa" or
// "bsa-full" algorithms.
func (r *Result) BSA() (*BSATrace, bool) {
	t, ok := r.trace.(*BSATrace)
	return t, ok
}

// Reschedule returns the warm-start trace when the result was produced
// by the package-level Reschedule function.
func (r *Result) Reschedule() (*RescheduleTrace, bool) {
	t, ok := r.trace.(*RescheduleTrace)
	return t, ok
}

// DLS returns the DLS trace when the result was produced by the "dls"
// algorithm.
func (r *Result) DLS() (*DLSTrace, bool) {
	t, ok := r.trace.(*DLSTrace)
	return t, ok
}

// HEFT returns the HEFT trace when the result was produced by the "heft"
// algorithm.
func (r *Result) HEFT() (*HEFTTrace, bool) {
	t, ok := r.trace.(*HEFTTrace)
	return t, ok
}

// CPOP returns the CPOP trace when the result was produced by the "cpop"
// algorithm.
func (r *Result) CPOP() (*CPOPTrace, bool) {
	t, ok := r.trace.(*CPOPTrace)
	return t, ok
}

// Stats is a bag of named numeric counters describing one run.
type Stats map[string]float64

// Get returns the counter under key, or 0 when absent.
func (s Stats) Get(key string) float64 { return s[key] }

// Keys returns the stat names in sorted order, for deterministic
// reporting.
func (s Stats) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
