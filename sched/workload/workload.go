package workload

import (
	"os"
	"path/filepath"
	"strings"

	"repro/sched/graph"
)

// LoadFile reads a workload instance and dispatches on the file
// extension: ".stg" parses via FromSTG, ".json" via FromWorkflowJSON.
// Any other extension is an *UnknownFormatError.
func LoadFile(path string, opts Options) (*graph.Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".stg":
		return FromSTG(data, opts)
	case ".json":
		return FromWorkflowJSON(data, opts)
	default:
		return nil, &UnknownFormatError{Path: path, Ext: ext}
	}
}
