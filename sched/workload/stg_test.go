package workload_test

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/sched/graph"
	"repro/sched/workload"
)

const diamondSTG = "4\n0 2 0\n1 3 1 0\n2 4 1 0\n3 2 2 1 2\n"

func mustSTG(t *testing.T, src string, opts workload.Options) *graph.Graph {
	t.Helper()
	g, err := workload.FromSTG([]byte(src), opts)
	if err != nil {
		t.Fatalf("FromSTG: %v", err)
	}
	return g
}

func TestSTGDiamond(t *testing.T) {
	g := mustSTG(t, diamondSTG, workload.Options{})
	if g.NumTasks() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d tasks %d edges, want 4/4", g.NumTasks(), g.NumEdges())
	}
	wantCost := []float64{2, 3, 4, 2}
	for i, want := range wantCost {
		task := g.Task(graph.TaskID(i))
		if task.Cost != want {
			t.Errorf("task %d cost %v, want %v", i, task.Cost, want)
		}
		if wantName := []string{"n0", "n1", "n2", "n3"}[i]; task.Name != wantName {
			t.Errorf("task %d name %q, want %q", i, task.Name, wantName)
		}
	}
	// STG has no comm costs: every edge gets meanExec/granularity.
	wantComm := (2.0 + 3 + 4 + 2) / 4
	for _, e := range g.Edges() {
		if e.Cost != wantComm {
			t.Errorf("edge %d->%d cost %v, want %v", e.From, e.To, e.Cost, wantComm)
		}
	}
}

func TestSTGCommentsAndBlankLines(t *testing.T) {
	src := "# header comment\n\n4 # count\n0 2 0\n\n1 3 1 0\n2 4 1 0 # fan\n3 2 2 1 2\n# trailer\n"
	g := mustSTG(t, src, workload.Options{})
	if g.NumTasks() != 4 {
		t.Fatalf("got %d tasks, want 4", g.NumTasks())
	}
}

func TestSTGDummyDropping(t *testing.T) {
	g, err := workload.LoadFile("../../testdata/workloads/sparse10.stg", workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 10 {
		t.Fatalf("dummies not dropped: %d tasks, want 10", g.NumTasks())
	}
	// Names keep the original STG indices.
	if got := g.Task(0).Name; got != "n1" {
		t.Errorf("first kept task %q, want n1", got)
	}
	for _, task := range g.Tasks() {
		if task.Name == "n0" || task.Name == "n11" {
			t.Errorf("dummy %s survived", task.Name)
		}
	}
}

func TestSTGKeepDummies(t *testing.T) {
	g, err := workload.LoadFile("../../testdata/workloads/sparse10.stg",
		workload.Options{KeepDummies: true, ZeroCost: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 12 {
		t.Fatalf("got %d tasks, want 12", g.NumTasks())
	}
	if got := g.Task(0).Cost; got != 0.5 {
		t.Errorf("entry dummy cost %v, want ZeroCost 0.5", got)
	}
}

func TestSTGScaling(t *testing.T) {
	g := mustSTG(t, diamondSTG, workload.Options{ExecScale: 10, Granularity: 2})
	if got := g.Task(0).Cost; got != 20 {
		t.Errorf("scaled cost %v, want 20", got)
	}
	wantComm := (20.0 + 30 + 40 + 20) / 4 / 2
	if got := g.Edge(0).Cost; got != wantComm {
		t.Errorf("comm %v, want %v", got, wantComm)
	}
}

func TestSTGZeroCostSubstitution(t *testing.T) {
	// A zero-cost task in the middle of the graph is not a dummy; its
	// cost is substituted so the positive-cost rule holds.
	src := "3\n0 2 0\n1 0 1 0\n2 4 1 1\n"
	g := mustSTG(t, src, workload.Options{ZeroCost: 7})
	if got := g.Task(1).Cost; got != 7 {
		t.Errorf("zero task cost %v, want 7", got)
	}
}

func TestSTGParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
		line      int
		frag      string
	}{
		{"empty", "", 0, "empty input"},
		{"bad count", "x\n", 1, "bad task count"},
		{"negative count", "-1\n", 1, "bad task count"},
		{"multi-field header", "4 2\n", 1, "single task count"},
		{"short line", "1\n0 1\n", 2, "needs index"},
		{"bad index", "1\nz 1 0\n", 2, "bad task index"},
		{"out of order", "2\n0 1 0\n5 1 0\n", 3, "out of order"},
		{"bad time", "1\n0 zz 0\n", 2, "bad processing time"},
		{"bad npred", "1\n0 1 -2\n", 2, "bad predecessor count"},
		{"npred mismatch", "2\n0 1 0\n1 1 2 0\n", 3, "does not match"},
		{"bad pred", "2\n0 1 0\n1 1 1 q\n", 3, "bad predecessor index"},
		{"pred range", "2\n0 1 0\n1 1 1 9\n", 3, "out of range"},
		{"count mismatch", "5\n0 1 0\n1 1 1 0\n", 0, "declared 5 tasks, found 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := workload.FromSTG([]byte(tc.src), workload.Options{})
			var pe *workload.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *ParseError", err)
			}
			if pe.Line != tc.line {
				t.Errorf("line %d, want %d", pe.Line, tc.line)
			}
			if !strings.Contains(pe.Error(), tc.frag) {
				t.Errorf("error %q missing %q", pe.Error(), tc.frag)
			}
		})
	}
}

func TestSTGBuilderErrorsFlow(t *testing.T) {
	// Structural violations surface as the graph builder's own typed
	// errors, not as workload errors.
	var selfLoop *graph.SelfLoopError
	if _, err := workload.FromSTG([]byte("2\n0 1 0\n1 1 1 1\n"), workload.Options{}); !errors.As(err, &selfLoop) {
		t.Errorf("self-loop err = %v, want *graph.SelfLoopError", err)
	}
	var dup *graph.DuplicateEdgeError
	if _, err := workload.FromSTG([]byte("2\n0 1 0\n1 1 2 0 0\n"), workload.Options{}); !errors.As(err, &dup) {
		t.Errorf("duplicate err = %v, want *graph.DuplicateEdgeError", err)
	}
	var cost *graph.TaskCostError
	if _, err := workload.FromSTG([]byte("1\n0 -4 0\n"), workload.Options{}); !errors.As(err, &cost) {
		t.Errorf("negative cost err = %v, want *graph.TaskCostError", err)
	}
	var cycle *graph.CycleError
	if _, err := workload.FromSTG([]byte("3\n0 1 0\n1 1 1 2\n2 1 1 1\n"), workload.Options{}); !errors.As(err, &cycle) {
		t.Errorf("cycle err = %v, want *graph.CycleError", err)
	}
}

func TestSTGOptionError(t *testing.T) {
	var oe *workload.OptionError
	if _, err := workload.FromSTG([]byte(diamondSTG), workload.Options{Granularity: math.Inf(1)}); !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OptionError", err)
	} else if oe.Field != "Granularity" {
		t.Errorf("field %q, want Granularity", oe.Field)
	}
}

func TestSTGDeterministic(t *testing.T) {
	g1 := mustSTG(t, diamondSTG, workload.Options{})
	g2 := mustSTG(t, diamondSTG, workload.Options{})
	j1, err := g1.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := g2.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Error("two imports of the same STG differ")
	}
}

func TestReadSTG(t *testing.T) {
	g, err := workload.ReadSTG(strings.NewReader(diamondSTG), workload.Options{})
	if err != nil || g.NumTasks() != 4 {
		t.Fatalf("ReadSTG = %v, %v", g, err)
	}
}
