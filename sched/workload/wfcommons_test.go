package workload_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/sched/graph"
	"repro/sched/workload"
)

func wfEdgeCost(t *testing.T, g *graph.Graph, from, to string) float64 {
	t.Helper()
	var u, v graph.TaskID = -1, -1
	for _, task := range g.Tasks() {
		switch task.Name {
		case from:
			u = task.ID
		case to:
			v = task.ID
		}
	}
	e, ok := g.FindEdge(u, v)
	if !ok {
		t.Fatalf("no edge %s->%s", from, to)
	}
	return e.Cost
}

func TestWorkflowMontage(t *testing.T) {
	g, err := workload.LoadFile("../../testdata/workloads/montage-small.json", workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 11 || g.NumEdges() != 16 {
		t.Fatalf("got %d tasks %d edges, want 11/16", g.NumTasks(), g.NumEdges())
	}
	// Edge costs come from the bytes the child reads among the parent's
	// outputs, in MiB with the default BytesPerUnit.
	if got := wfEdgeCost(t, g, "mProject_1", "mDiffFit_12"); got != 4.0 {
		t.Errorf("mProject_1->mDiffFit_12 = %v, want 4 (4 MiB file)", got)
	}
	if got := wfEdgeCost(t, g, "mBgModel", "mBackground_1"); got != 0.125 {
		t.Errorf("mBgModel->mBackground_1 = %v, want 0.125 (128 KiB table)", got)
	}
	if got := g.Task(0).Cost; got != 12.5 {
		t.Errorf("mProject_1 cost %v, want runtime 12.5", got)
	}
}

func TestWorkflowFallbackEdges(t *testing.T) {
	g, err := workload.LoadFile("../../testdata/workloads/epigenomics-small.json", workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 10 || g.NumEdges() != 10 {
		t.Fatalf("got %d tasks %d edges, want 10/10", g.NumTasks(), g.NumEdges())
	}
	// No file data anywhere: every edge falls back to meanExec/granularity.
	want := 75.5 / 10
	for _, e := range g.Edges() {
		if e.Cost != want {
			t.Errorf("edge %d->%d cost %v, want fallback %v", e.From, e.To, e.Cost, want)
		}
	}
	// Tasks without a name use their id.
	if got := g.Task(0).Name; got != "fastqSplit" {
		t.Errorf("task 0 name %q, want id fallback fastqSplit", got)
	}
}

func TestWorkflowBytesPerUnit(t *testing.T) {
	g, err := workload.LoadFile("../../testdata/workloads/montage-small.json",
		workload.Options{BytesPerUnit: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := wfEdgeCost(t, g, "mProject_1", "mDiffFit_12"); got != 4096 {
		t.Errorf("KiB-scaled edge = %v, want 4096", got)
	}
}

func wfjson(tasks string) []byte {
	return []byte(fmt.Sprintf(`{"workflow":{"tasks":[%s]}}`, tasks))
}

func TestWorkflowErrors(t *testing.T) {
	parseCases := []struct {
		name string
		doc  string
		frag string
	}{
		{"invalid json", `{`, "unexpected end"},
		{"missing workflow", `{"name":"x"}`, "missing workflow"},
		{"no tasks", `{"workflow":{"tasks":[]}}`, "no tasks"},
		{"anonymous task", string(wfjson(`{"runtime":1}`)), "neither name nor id"},
		{"ambiguous id", string(wfjson(`{"name":"a","runtime":1},{"name":"b","id":"a","runtime":1}`)), "duplicate task identifier"},
	}
	for _, tc := range parseCases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := workload.FromWorkflowJSON([]byte(tc.doc), workload.Options{})
			var pe *workload.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *ParseError", err)
			}
			if !strings.Contains(pe.Error(), tc.frag) {
				t.Errorf("error %q missing %q", pe.Error(), tc.frag)
			}
		})
	}

	t.Run("unknown parent", func(t *testing.T) {
		_, err := workload.FromWorkflowJSON(wfjson(`{"name":"a","runtime":1,"parents":["ghost"]}`), workload.Options{})
		var ue *workload.UnknownTaskError
		if !errors.As(err, &ue) {
			t.Fatalf("err = %v, want *UnknownTaskError", err)
		}
		if ue.Task != "a" || ue.Parent != "ghost" {
			t.Errorf("got %+v", ue)
		}
	})
	t.Run("duplicate name", func(t *testing.T) {
		// Two tasks with the SAME display name hit the builder's
		// duplicate rule via the identifier map.
		_, err := workload.FromWorkflowJSON(wfjson(`{"name":"a","runtime":1},{"name":"a","runtime":2}`), workload.Options{})
		var pe *workload.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want *ParseError", err)
		}
	})
	t.Run("negative runtime", func(t *testing.T) {
		_, err := workload.FromWorkflowJSON(wfjson(`{"name":"a","runtime":-2}`), workload.Options{})
		var ce *graph.TaskCostError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *graph.TaskCostError", err)
		}
	})
	t.Run("cycle", func(t *testing.T) {
		_, err := workload.FromWorkflowJSON(wfjson(`{"name":"a","runtime":1,"parents":["b"]},{"name":"b","runtime":1,"parents":["a"]}`), workload.Options{})
		var cy *graph.CycleError
		if !errors.As(err, &cy) {
			t.Fatalf("err = %v, want *graph.CycleError", err)
		}
	})
}

func TestWorkflowZeroRuntime(t *testing.T) {
	g, err := workload.FromWorkflowJSON(wfjson(`{"name":"a"},{"name":"b","runtime":4,"parents":["a"]}`),
		workload.Options{ZeroCost: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Task(0).Cost; got != 3 {
		t.Errorf("zero-runtime cost %v, want ZeroCost 3", got)
	}
}

func TestReadWorkflowJSON(t *testing.T) {
	doc := `{"workflow":{"tasks":[{"name":"a","runtime":2}]}}`
	g, err := workload.ReadWorkflowJSON(strings.NewReader(doc), workload.Options{})
	if err != nil || g.NumTasks() != 1 {
		t.Fatalf("ReadWorkflowJSON = %v, %v", g, err)
	}
}

func TestLoadFileDispatch(t *testing.T) {
	if _, err := workload.LoadFile("../../testdata/workloads/diamond.stg", workload.Options{}); err != nil {
		t.Errorf("stg dispatch: %v", err)
	}
	if _, err := workload.LoadFile("../../testdata/workloads/montage-small.json", workload.Options{}); err != nil {
		t.Errorf("json dispatch: %v", err)
	}
	var fe *workload.UnknownFormatError
	if _, err := workload.LoadFile("../../testdata/workloads/README.md", workload.Options{}); !errors.As(err, &fe) {
		t.Errorf("err = %v, want *UnknownFormatError", err)
	} else if fe.Ext != ".md" {
		t.Errorf("ext %q, want .md", fe.Ext)
	}
	if _, err := workload.LoadFile("does-not-exist.stg", workload.Options{}); err == nil {
		t.Error("missing file: want error")
	}
}
