// Package workload imports standard benchmark task graphs into the
// sched/graph representation.
//
// Two importers are provided:
//
//   - FromSTG parses the STG standard-task-graph text format used by the
//     Kasahara-lab benchmark suite (one task per line: index, processing
//     time, predecessor count, predecessor indices). STG carries no
//     communication costs, so every edge receives a uniform nominal cost
//     derived from the mean execution cost and Options.Granularity —
//     the same CCR convention the in-repo generator uses.
//
//   - FromWorkflowJSON parses a WfCommons/Pegasus-style scientific
//     workflow JSON subset (workflow.tasks with name, runtime, parents
//     and files). Edge costs are derived from the bytes a child reads
//     among its parent's output files; edges without shared files fall
//     back to the Granularity convention.
//
// Both importers produce deterministic task and edge ordering (file
// order), report malformed inputs with typed errors (*ParseError,
// *UnknownTaskError, *UnknownFormatError, *OptionError) and let
// structural violations surface as the sched/graph builder's own typed
// errors (cycles, duplicate edges, non-finite costs). LoadFile
// dispatches on the file extension, so tools can accept either format
// through one flag.
//
// A committed scenario pack of small instances in both formats lives at
// the repository root under testdata/workloads.
package workload
