package workload_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/sched/graph"
	"repro/sched/workload"
)

// seedPack adds every committed scenario-pack instance matching the
// glob as a fuzz seed, so the fuzzers start from real accepted inputs.
func seedPack(f *testing.F, pattern string) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "workloads", pattern))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatalf("no scenario-pack seeds match %q", pattern)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// importChecks verifies the contract every accepted import must honor:
// the same bytes import to the same graph (determinism), and the graph
// round-trips through the canonical JSON interchange form as a fixpoint
// — save(load(x)) reloads cleanly and re-saves to the same bytes.
func importChecks(t *testing.T, g *graph.Graph, reload func() (*graph.Graph, error)) {
	t.Helper()
	j1, err := g.MarshalJSON()
	if err != nil {
		t.Fatalf("save(load(x)): %v", err)
	}
	g2, err := reload()
	if err != nil {
		t.Fatalf("second import of accepted input failed: %v", err)
	}
	j2, err := g2.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("import is not deterministic:\nfirst:  %q\nsecond: %q", j1, j2)
	}
	g3, err := graph.FromJSON(j1)
	if err != nil {
		t.Fatalf("graph.FromJSON rejected an imported graph: %v\njson: %q", err, j1)
	}
	j3, err := g3.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j3) {
		t.Fatalf("canonical JSON of imported graph is not a fixpoint:\nfirst:  %q\nsecond: %q", j1, j3)
	}
}

// FuzzWorkloadSTG: FromSTG must never panic, and any STG input it
// accepts must import deterministically and round-trip through the
// graph JSON interchange form.
func FuzzWorkloadSTG(f *testing.F) {
	seedPack(f, "*.stg")
	f.Add([]byte("4\n0 2 0\n1 3 1 0\n2 4 1 0\n3 2 2 1 2\n"))
	f.Add([]byte("1\n0 0 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := workload.FromSTG(data, workload.Options{})
		if err != nil {
			return
		}
		importChecks(t, g, func() (*graph.Graph, error) {
			return workload.FromSTG(data, workload.Options{})
		})
	})
}

// FuzzWorkloadJSON: the same contract for the workflow-JSON importer.
func FuzzWorkloadJSON(f *testing.F) {
	seedPack(f, "*.json")
	f.Add([]byte(`{"workflow":{"tasks":[{"name":"a","runtime":2},{"name":"b","runtime":3,"parents":["a"]}]}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := workload.FromWorkflowJSON(data, workload.Options{})
		if err != nil {
			return
		}
		importChecks(t, g, func() (*graph.Graph, error) {
			return workload.FromWorkflowJSON(data, workload.Options{})
		})
	})
}
