package workload

import "fmt"

// ParseError reports malformed workload input. Line is 1-based for the
// line-oriented STG format and 0 when the error is not line-addressable
// (workflow JSON documents).
type ParseError struct {
	Format string // "stg" or "workflow-json"
	Line   int
	Msg    string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("workload: %s line %d: %s", e.Format, e.Line, e.Msg)
	}
	return fmt.Sprintf("workload: %s: %s", e.Format, e.Msg)
}

// UnknownTaskError reports a workflow task whose parents list names a
// task that does not appear in the document.
type UnknownTaskError struct {
	Task   string // the referencing task
	Parent string // the missing parent
}

func (e *UnknownTaskError) Error() string {
	return fmt.Sprintf("workload: task %q lists unknown parent %q", e.Task, e.Parent)
}

// UnknownFormatError is returned by LoadFile for a file extension no
// importer claims.
type UnknownFormatError struct {
	Path string
	Ext  string
}

func (e *UnknownFormatError) Error() string {
	return fmt.Sprintf("workload: %s: unknown workload format %q (want .stg or .json)", e.Path, e.Ext)
}

// OptionError reports an Options field that is not a positive, finite
// number.
type OptionError struct {
	Field string
	Value float64
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("workload: option %s must be positive and finite, got %v", e.Field, e.Value)
}
