package workload_test

import (
	"fmt"

	"repro/sched/workload"
)

// ExampleFromSTG imports a four-task diamond written in the STG text
// format. STG carries no communication costs, so edges get the uniform
// meanExec/Granularity cost.
func ExampleFromSTG() {
	const stg = `4
0 2 0
1 3 1 0
2 4 1 0
3 2 2 1 2
`
	g, err := workload.FromSTG([]byte(stg), workload.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d tasks, %d edges, edge cost %.2f\n", g.NumTasks(), g.NumEdges(), g.Edge(0).Cost)
	// Output: 4 tasks, 4 edges, edge cost 2.75
}

// ExampleLoadFile loads a workflow-JSON instance from the committed
// scenario pack; the extension picks the importer.
func ExampleLoadFile() {
	g, err := workload.LoadFile("../../testdata/workloads/montage-small.json", workload.Options{})
	if err != nil {
		panic(err)
	}
	last := g.Tasks()[g.NumTasks()-1]
	fmt.Printf("%s ... %s: %d tasks, %d edges\n",
		g.Task(0).Name, last.Name, g.NumTasks(), g.NumEdges())
	// Output: mProject_1 ... mAdd: 11 tasks, 16 edges
}
