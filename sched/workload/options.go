package workload

import "math"

// Options control cost scaling during import. The zero value selects
// every default, so workload.Options{} is always valid.
type Options struct {
	// ExecScale multiplies every task cost after parsing (applied after
	// ZeroCost substitution). Unit-cost STG instances become
	// heterogeneity-meaningful by scaling them into the same cost range
	// the generator emits. Default 1.
	ExecScale float64

	// Granularity sets the nominal communication cost for inputs that do
	// not carry one (all STG edges; workflow edges without shared file
	// data): cost = meanExec / Granularity, the CCR convention shared
	// with gen.Spec. Granularity 1 makes communication as expensive as
	// computation on average — the contention-sensitive regime. Default 1.
	Granularity float64

	// ZeroCost replaces a parsed task cost of exactly zero (STG dummy
	// nodes kept via KeepDummies, zero-runtime workflow tasks) so the
	// graph.Builder positive-cost rule holds. Negative or non-finite
	// parsed costs are NOT substituted; they surface as the builder's
	// *graph.TaskCostError. Default 1.
	ZeroCost float64

	// KeepDummies keeps STG's zero-cost entry/exit dummy tasks (their
	// cost becomes ZeroCost) instead of dropping them and their edges.
	// Default false: the dummies carry no work and only exist to make
	// the STG graph single-entry/single-exit.
	KeepDummies bool

	// BytesPerUnit converts workflow file sizes (bytes) into
	// communication cost units. Default 1 MiB per unit, so a 64 MiB
	// intermediate file costs 64 time units on a unit-factor link.
	BytesPerUnit float64
}

// norm fills defaults and validates; it returns the first bad field.
func (o Options) norm() (Options, error) {
	if o.ExecScale == 0 {
		o.ExecScale = 1
	}
	if o.Granularity == 0 {
		o.Granularity = 1
	}
	if o.ZeroCost == 0 {
		o.ZeroCost = 1
	}
	if o.BytesPerUnit == 0 {
		o.BytesPerUnit = 1 << 20
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ExecScale", o.ExecScale},
		{"Granularity", o.Granularity},
		{"ZeroCost", o.ZeroCost},
		{"BytesPerUnit", o.BytesPerUnit},
	} {
		if !(f.v > 0) || math.IsInf(f.v, 0) {
			return o, &OptionError{Field: f.name, Value: f.v}
		}
	}
	return o, nil
}
