package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/sched/graph"
)

const wfFormat = "workflow-json"

// The accepted WfCommons/Pegasus-style subset. Unknown fields are
// ignored so real instances with provenance metadata still load; the
// synonym pairs (runtime/runtimeInSeconds, size/sizeInBytes) cover the
// schema versions in circulation.
type wfDoc struct {
	Name     string  `json:"name"`
	Workflow *wfSpec `json:"workflow"`
}

type wfSpec struct {
	Tasks []wfTask `json:"tasks"`
}

type wfTask struct {
	Name             string   `json:"name"`
	ID               string   `json:"id"`
	Runtime          *float64 `json:"runtime"`
	RuntimeInSeconds *float64 `json:"runtimeInSeconds"`
	Parents          []string `json:"parents"`
	Files            []wfFile `json:"files"`
}

type wfFile struct {
	Name        string   `json:"name"`
	Link        string   `json:"link"` // "input" or "output"
	Size        *float64 `json:"size"`
	SizeInBytes *float64 `json:"sizeInBytes"`
}

// FromWorkflowJSON parses a WfCommons-style scientific-workflow JSON
// subset: an object with workflow.tasks, each task carrying a unique
// name (or id), a runtime in seconds, the names of its parents, and
// optionally the files it reads (link "input") and writes (link
// "output") with sizes in bytes.
//
// Task cost is runtime (ZeroCost for zero runtimes) times
// Options.ExecScale. The cost of edge parent→child is the total size of
// the parent's output files the child lists as inputs, divided by
// Options.BytesPerUnit; edges with no shared file data fall back to
// meanExec/Options.Granularity. Task and edge order follow the
// document, so imports are deterministic.
//
// Malformed documents are reported as *ParseError, dangling parent
// references as *UnknownTaskError; structural violations (duplicate
// names, cycles, non-finite costs) surface as the sched/graph builder's
// typed errors.
func FromWorkflowJSON(data []byte, opts Options) (*graph.Graph, error) {
	opts, err := opts.norm()
	if err != nil {
		return nil, err
	}
	var doc wfDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, &ParseError{Format: wfFormat, Msg: err.Error()}
	}
	if doc.Workflow == nil {
		return nil, &ParseError{Format: wfFormat, Msg: "missing workflow object"}
	}
	tasks := doc.Workflow.Tasks
	if len(tasks) == 0 {
		return nil, &ParseError{Format: wfFormat, Msg: "workflow has no tasks"}
	}

	// Parents may reference either names or ids; register both. A key
	// claimed by two different tasks would make references ambiguous.
	index := make(map[string]int, len(tasks))
	reg := func(key string, i int) error {
		if key == "" {
			return nil
		}
		if j, ok := index[key]; ok && j != i {
			return &ParseError{Format: wfFormat, Msg: fmt.Sprintf("duplicate task identifier %q", key)}
		}
		index[key] = i
		return nil
	}
	names := make([]string, len(tasks))
	for i, t := range tasks {
		names[i] = t.Name
		if names[i] == "" {
			names[i] = t.ID
		}
		if names[i] == "" {
			return nil, &ParseError{Format: wfFormat, Msg: fmt.Sprintf("task %d has neither name nor id", i)}
		}
		if err := reg(t.Name, i); err != nil {
			return nil, err
		}
		if err := reg(t.ID, i); err != nil {
			return nil, err
		}
	}

	b := graph.NewBuilder()
	id := make([]graph.TaskID, len(tasks))
	sum := 0.0
	for i, t := range tasks {
		cost := 0.0
		switch {
		case t.Runtime != nil:
			cost = *t.Runtime
		case t.RuntimeInSeconds != nil:
			cost = *t.RuntimeInSeconds
		}
		if cost == 0 {
			cost = opts.ZeroCost
		}
		cost *= opts.ExecScale
		id[i] = b.AddTask(names[i], cost)
		sum += cost
	}
	fallback := sum / float64(len(tasks)) / opts.Granularity

	outBytes := make([]map[string]float64, len(tasks))
	for i, t := range tasks {
		for _, f := range t.Files {
			if f.Link != "output" || f.Name == "" {
				continue
			}
			if outBytes[i] == nil {
				outBytes[i] = make(map[string]float64)
			}
			outBytes[i][f.Name] += fileSize(f)
		}
	}
	for i, t := range tasks {
		for _, parent := range t.Parents {
			j, ok := index[parent]
			if !ok {
				return nil, &UnknownTaskError{Task: names[i], Parent: parent}
			}
			cost := 0.0
			for _, f := range t.Files {
				if f.Link != "input" {
					continue
				}
				cost += outBytes[j][f.Name]
			}
			if cost == 0 {
				cost = fallback
			} else {
				cost /= opts.BytesPerUnit
			}
			b.AddEdge(id[j], id[i], cost)
		}
	}
	return b.Build()
}

// ReadWorkflowJSON parses a workflow document from r (see
// FromWorkflowJSON).
func ReadWorkflowJSON(r io.Reader, opts Options) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return FromWorkflowJSON(data, opts)
}

func fileSize(f wfFile) float64 {
	switch {
	case f.Size != nil:
		return *f.Size
	case f.SizeInBytes != nil:
		return *f.SizeInBytes
	}
	return 0
}
