package workload

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/sched/graph"
)

const stgFormat = "stg"

type stgTask struct {
	line  int // 1-based source line, for error reporting
	cost  float64
	preds []int
}

// FromSTG parses the STG standard-task-graph text format: a header line
// with the task count, then one line per task of the form
//
//	index processing-time npred pred-1 ... pred-npred
//
// Comments start with '#' and run to end of line; blank lines are
// ignored. Task indices must be sequential from 0. The file may contain
// exactly the declared number of tasks, or two more (the suite's
// zero-cost entry/exit dummies); unless Options.KeepDummies is set, a
// zero-cost predecessor-less first task and a zero-cost successor-less
// last task are dropped together with their edges.
//
// STG carries no communication costs: every edge gets the uniform
// nominal cost meanExec/Options.Granularity. Task order (and therefore
// graph.TaskID assignment) follows the file; edges follow each task's
// predecessor list.
//
// Malformed input is reported as *ParseError with a 1-based line
// number; structural violations (self-loops, duplicate edges, cycles,
// non-finite costs) surface as the sched/graph builder's typed errors.
func FromSTG(data []byte, opts Options) (*graph.Graph, error) {
	opts, err := opts.norm()
	if err != nil {
		return nil, err
	}

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	declared := -1
	var tasks []stgTask
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if declared < 0 {
			if len(fields) != 1 {
				return nil, &ParseError{Format: stgFormat, Line: lineNo, Msg: "header must be a single task count"}
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, &ParseError{Format: stgFormat, Line: lineNo, Msg: fmt.Sprintf("bad task count %q", fields[0])}
			}
			declared = n
			continue
		}
		t, perr := parseSTGTask(fields, len(tasks), lineNo)
		if perr != nil {
			return nil, perr
		}
		tasks = append(tasks, t)
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Format: stgFormat, Line: lineNo + 1, Msg: err.Error()}
	}
	if declared < 0 {
		return nil, &ParseError{Format: stgFormat, Msg: "empty input"}
	}
	if len(tasks) != declared && len(tasks) != declared+2 {
		return nil, &ParseError{Format: stgFormat, Msg: fmt.Sprintf(
			"declared %d tasks, found %d (want %d, or %d with entry/exit dummies)",
			declared, len(tasks), declared, declared+2)}
	}

	// Validate predecessor ranges up front (with line numbers) and track
	// which tasks have successors, which the dummy-sink rule needs.
	hasSucc := make([]bool, len(tasks))
	for _, t := range tasks {
		for _, p := range t.preds {
			if p < 0 || p >= len(tasks) {
				return nil, &ParseError{Format: stgFormat, Line: t.line,
					Msg: fmt.Sprintf("predecessor %d out of range [0,%d)", p, len(tasks))}
			}
			hasSucc[p] = true
		}
	}

	drop := make([]bool, len(tasks))
	if !opts.KeepDummies && len(tasks) > 1 {
		if tasks[0].cost == 0 && len(tasks[0].preds) == 0 {
			drop[0] = true
		}
		if last := len(tasks) - 1; tasks[last].cost == 0 && !hasSucc[last] {
			drop[last] = true
		}
	}

	b := graph.NewBuilder()
	id := make([]graph.TaskID, len(tasks))
	kept, sum := 0, 0.0
	for i, t := range tasks {
		if drop[i] {
			continue
		}
		cost := t.cost
		if cost == 0 {
			cost = opts.ZeroCost
		}
		cost *= opts.ExecScale
		id[i] = b.AddTask(fmt.Sprintf("n%d", i), cost)
		kept++
		sum += cost
	}
	if kept == 0 {
		return nil, &ParseError{Format: stgFormat, Msg: "no tasks"}
	}
	comm := sum / float64(kept) / opts.Granularity
	for i, t := range tasks {
		if drop[i] {
			continue
		}
		for _, p := range t.preds {
			if drop[p] {
				continue
			}
			b.AddEdge(id[p], id[i], comm)
		}
	}
	return b.Build()
}

// ReadSTG parses an STG document from r (see FromSTG).
func ReadSTG(r io.Reader, opts Options) (*graph.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return FromSTG(data, opts)
}

func parseSTGTask(fields []string, want, line int) (stgTask, error) {
	t := stgTask{line: line}
	idx, err := strconv.Atoi(fields[0])
	if err != nil {
		return t, &ParseError{Format: stgFormat, Line: line, Msg: fmt.Sprintf("bad task index %q", fields[0])}
	}
	if idx != want {
		return t, &ParseError{Format: stgFormat, Line: line, Msg: fmt.Sprintf("task index %d out of order (want %d)", idx, want)}
	}
	if len(fields) < 3 {
		return t, &ParseError{Format: stgFormat, Line: line, Msg: "task line needs index, processing time and predecessor count"}
	}
	t.cost, err = strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return t, &ParseError{Format: stgFormat, Line: line, Msg: fmt.Sprintf("bad processing time %q", fields[1])}
	}
	npred, err := strconv.Atoi(fields[2])
	if err != nil || npred < 0 {
		return t, &ParseError{Format: stgFormat, Line: line, Msg: fmt.Sprintf("bad predecessor count %q", fields[2])}
	}
	if len(fields) != 3+npred {
		return t, &ParseError{Format: stgFormat, Line: line,
			Msg: fmt.Sprintf("predecessor count %d does not match %d listed", npred, len(fields)-3)}
	}
	t.preds = make([]int, npred)
	for i, f := range fields[3:] {
		t.preds[i], err = strconv.Atoi(f)
		if err != nil {
			return t, &ParseError{Format: stgFormat, Line: line, Msg: fmt.Sprintf("bad predecessor index %q", f)}
		}
	}
	return t, nil
}
