// Package repro reproduces Kwok & Ahmad's BSA algorithm ("Link
// Contention-Constrained Scheduling and Mapping of Tasks and Messages to a
// Network of Heterogeneous Processors", ICPP 1999): a static scheduler that
// maps precedence-constrained task graphs onto arbitrary networks of
// heterogeneous processors, treating communication links as first-class
// contended resources and routing messages incrementally without a routing
// table.
//
// The supported API surface is the public repro/sched package tree: one
// Scheduler interface, a uniform Result with a read-only Schedule view
// and typed trace accessors, functional options and a self-registering
// algorithm registry (blank-import repro/sched/register to install the
// built-in algorithms bsa, bsa-full, dls, heft and cpop). The problem
// model is public alongside it: task graphs with builders and JSON/DOT
// interchange in repro/sched/graph, heterogeneous target systems and
// topologies in repro/sched/system, and the paper's seeded workload and
// topology generators in repro/sched/gen.
//
// The engines live under internal/ and are not a supported surface: the
// BSA algorithm in internal/core, the DLS baseline in internal/dls,
// contention-aware HEFT and CPOP extensions in internal/heft and
// internal/cpop, and the mutable schedule timelines, experiment harness
// and replay simulator in their own packages. An API-seal test keeps
// internal types out of every public exported signature, and the
// standalone module under tests/extmodule proves the public surface
// suffices for external callers. Executables are under cmd/ and runnable
// examples under examples/. The benchmarks in bench_test.go regenerate
// the paper's tables and figures at reduced scale; cmd/experiments
// regenerates them in full.
//
// BSA runs on an incremental engine by default, built as a stack of
// layers that all preserve byte-identical schedules: committed migrations
// re-derive only their dependency cone (event-driven cone updates); a
// sweep-level candidate cache memoizes each task's neighbour finish-time
// row and re-evaluates only the rows and entries a commit's cone stamped
// (sched.WithCandidateCache, default on — the run's fixpoint sweep costs
// zero evaluations and zero allocations); and the hot paths are
// arena-backed (offset/length route views, pooled evaluation scratch,
// in-place route normalization, single-search timeline reservations).
// The original full-rebuild engine remains available as a correctness
// oracle via sched.WithFullRebuild(true) or the "bsa-full" registry name
// — every engine configuration produces byte-identical schedules for
// identical seeds, enforced by property tests. See README.md's
// "Performance" section for measured numbers; BENCH_core.json at the
// repo root is the committed benchmark trajectory point that CI's
// make bench-gate compares against.
package repro
