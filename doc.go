// Package repro reproduces Kwok & Ahmad's BSA algorithm ("Link
// Contention-Constrained Scheduling and Mapping of Tasks and Messages to a
// Network of Heterogeneous Processors", ICPP 1999): a static scheduler that
// maps precedence-constrained task graphs onto arbitrary networks of
// heterogeneous processors, treating communication links as first-class
// contended resources and routing messages incrementally without a routing
// table.
//
// The supported API surface is the public repro/sched package: one
// Scheduler interface, a uniform Result, functional options and a
// self-registering algorithm registry (blank-import repro/sched/register
// to install the built-in algorithms bsa, bsa-full, dls, heft and cpop).
//
// The implementation lives under internal/ and is not a supported
// surface: the BSA algorithm in internal/core, the DLS baseline in
// internal/dls, contention-aware HEFT and CPOP extensions in
// internal/heft and internal/cpop, and the supporting substrates (task
// graphs, networks, heterogeneity model, schedule timelines, workload
// generators, experiment harness, replay simulator) in their own
// packages. Executables are under cmd/ and runnable examples under
// examples/. The benchmarks in bench_test.go regenerate the paper's
// tables and figures at reduced scale; cmd/experiments regenerates them
// in full.
//
// BSA runs on an incremental engine by default: committed migrations
// re-derive only their dependency cone, and candidate evaluations reuse
// arena overlay buffers, optionally in parallel (sched.WithWorkers).
// The original full-rebuild engine remains available as a correctness
// oracle via sched.WithFullRebuild(true) or the "bsa-full" registry name
// — both engines produce byte-identical schedules for identical seeds.
package repro
