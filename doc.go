// Package repro reproduces Kwok & Ahmad's BSA algorithm ("Link
// Contention-Constrained Scheduling and Mapping of Tasks and Messages to a
// Network of Heterogeneous Processors", ICPP 1999): a static scheduler that
// maps precedence-constrained task graphs onto arbitrary networks of
// heterogeneous processors, treating communication links as first-class
// contended resources and routing messages incrementally without a routing
// table.
//
// The supported API surface is the public repro/sched package: one
// Scheduler interface, a uniform Result, functional options and a
// self-registering algorithm registry (blank-import repro/sched/register
// to install the built-in algorithms bsa, bsa-full, dls, heft and cpop).
//
// The implementation lives under internal/ and is not a supported
// surface: the BSA algorithm in internal/core, the DLS baseline in
// internal/dls, contention-aware HEFT and CPOP extensions in
// internal/heft and internal/cpop, and the supporting substrates (task
// graphs, networks, heterogeneity model, schedule timelines, workload
// generators, experiment harness, replay simulator) in their own
// packages. Executables are under cmd/ and runnable examples under
// examples/. The benchmarks in bench_test.go regenerate the paper's
// tables and figures at reduced scale; cmd/experiments regenerates them
// in full.
//
// BSA runs on an incremental engine by default, built as a stack of
// layers that all preserve byte-identical schedules: committed migrations
// re-derive only their dependency cone (event-driven cone updates); a
// sweep-level candidate cache memoizes each task's neighbour finish-time
// row and re-evaluates only the rows and entries a commit's cone stamped
// (sched.WithCandidateCache, default on — the run's fixpoint sweep costs
// zero evaluations and zero allocations); and the hot paths are
// arena-backed (offset/length route views, pooled evaluation scratch,
// in-place route normalization, single-search timeline reservations).
// The original full-rebuild engine remains available as a correctness
// oracle via sched.WithFullRebuild(true) or the "bsa-full" registry name
// — every engine configuration produces byte-identical schedules for
// identical seeds, enforced by property tests. See README.md's
// "Performance" section for measured numbers; BENCH_core.json at the
// repo root is the committed benchmark trajectory point that CI's
// make bench-gate compares against.
package repro
